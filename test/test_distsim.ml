(* Tests for the distributed runtime: partitioning invariants, narrow vs
   wide operations, metering. *)

open Relation
module Dds = Distsim.Dds
module Cluster = Distsim.Cluster
module Metrics = Distsim.Metrics

let sch = Schema.of_list
let rel schema rows = Rel.of_list (sch schema) rows
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_rel msg expected actual =
  if not (Rel.equal expected actual) then
    Alcotest.failf "%s:@.expected %a@.got %a" msg Rel.pp_full expected Rel.pp_full actual

let edges = rel [ "src"; "trg" ] [ [ 1; 2 ]; [ 2; 3 ]; [ 1; 3 ]; [ 3; 4 ]; [ 4; 1 ]; [ 5; 5 ] ]

let test_roundtrip () =
  let c = Cluster.make ~workers:4 () in
  let d = Dds.of_rel c edges in
  check_int "cardinal" (Rel.cardinal edges) (Dds.cardinal d);
  check_rel "collect" edges (Dds.collect d);
  check_int "partitions" 4 (Dds.num_partitions d)

let test_hash_partitioning_colocates () =
  let c = Cluster.make ~workers:3 () in
  let d = Dds.of_rel ~by:[ "src" ] c edges in
  (* each src value lives on exactly one worker *)
  let owners = Hashtbl.create 8 in
  for w = 0 to Dds.num_partitions d - 1 do
    Tset.iter
      (fun tu ->
        match Hashtbl.find_opt owners tu.(0) with
        | Some w' when w' <> w -> Alcotest.failf "src %d on two workers" tu.(0)
        | _ -> Hashtbl.replace owners tu.(0) w)
      (Dds.partition d w)
  done;
  check_bool "partitioned" true (Dds.partitioning d = Dds.Hashed [ "src" ])

let test_filter_narrow () =
  let c = Cluster.make ~workers:4 () in
  let m = Cluster.metrics c in
  let d = Dds.of_rel ~by:[ "src" ] c edges in
  let shuffles_before = m.Metrics.shuffles in
  let f = Dds.filter (Pred.Eq_const ("src", 1)) d in
  check_int "no new shuffle" shuffles_before m.Metrics.shuffles;
  check_int "filtered" 2 (Dds.cardinal f);
  check_bool "partitioning preserved" true (Dds.partitioning f = Dds.Hashed [ "src" ])

let test_repartition_noop_and_move () =
  let c = Cluster.make ~workers:4 () in
  let m = Cluster.metrics c in
  let d = Dds.of_rel ~by:[ "src" ] c edges in
  let before = m.Metrics.shuffles in
  let same = Dds.repartition ~by:[ "src" ] d in
  check_int "noop repartition" before m.Metrics.shuffles;
  check_bool "same value" true (same == d);
  let moved = Dds.repartition ~by:[ "trg" ] d in
  check_int "one shuffle" (before + 1) m.Metrics.shuffles;
  check_rel "content preserved" edges (Dds.collect moved)

let test_distinct () =
  let c = Cluster.make ~workers:4 () in
  (* craft duplicates across partitions via arbitrary placement of a
     relation with repeated insertion patterns: use set_union_local of two
     differently-partitioned copies *)
  let a = Dds.of_rel ~by:[ "src" ] c edges in
  let b = Dds.of_rel ~by:[ "trg" ] c edges in
  let u = Dds.set_union_local a b in
  check_bool "dups across partitions" true (Dds.cardinal u >= Rel.cardinal edges);
  let d = Dds.distinct u in
  check_int "distinct collapses" (Rel.cardinal edges) (Dds.cardinal d);
  check_rel "same set" edges (Dds.collect d)

let test_distinct_free_when_hashed () =
  let c = Cluster.make ~workers:4 () in
  let m = Cluster.metrics c in
  let d = Dds.of_rel ~by:[ "src" ] c edges in
  let before = m.Metrics.shuffles in
  let d' = Dds.distinct d in
  check_int "free distinct" before m.Metrics.shuffles;
  check_bool "same" true (d' == d)

let test_join_broadcast () =
  let c = Cluster.make ~workers:4 () in
  let m = Cluster.metrics c in
  let d = Dds.of_rel ~by:[ "src" ] c edges in
  let small = Rel.rename [ ("src", "trg"); ("trg", "nxt") ] edges in
  let before_b = m.Metrics.broadcasts in
  let j = Dds.join_broadcast d small in
  check_int "one broadcast" (before_b + 1) m.Metrics.broadcasts;
  let expected = Rel.natural_join edges small in
  check_rel "broadcast join = local join" expected (Dds.collect j);
  check_bool "left partitioning preserved" true (Dds.partitioning j = Dds.Hashed [ "src" ])

let test_join_shuffle () =
  let c = Cluster.make ~workers:4 () in
  let d = Dds.of_rel c edges in
  let other = Rel.rename [ ("src", "trg"); ("trg", "nxt") ] edges in
  let od = Dds.of_rel c other in
  let j = Dds.join_shuffle d od in
  check_rel "shuffle join = local join" (Rel.natural_join edges other) (Dds.collect j)

let test_antijoin_modes () =
  let c = Cluster.make ~workers:3 () in
  let d = Dds.of_rel c edges in
  let sinks = rel [ "trg" ] [ [ 3 ]; [ 4 ] ] in
  let expected = Rel.antijoin edges sinks in
  check_rel "broadcast anti" expected (Dds.collect (Dds.antijoin_broadcast d sinks));
  let d2 = Dds.of_rel c edges in
  let sd = Dds.of_rel c sinks in
  check_rel "shuffle anti" expected (Dds.collect (Dds.antijoin_shuffle d2 sd))

let test_set_diff_local () =
  let c = Cluster.make ~workers:4 () in
  let a = Dds.of_rel ~by:[ "src" ] c edges in
  let sub = rel [ "src"; "trg" ] [ [ 1; 2 ]; [ 5; 5 ] ] in
  let b = Dds.of_rel ~by:[ "src" ] c sub in
  check_rel "co-partitioned diff" (Rel.diff edges sub) (Dds.collect (Dds.set_diff_local a b))

let test_set_inter_local () =
  let c = Cluster.make ~workers:4 () in
  let a = Dds.of_rel ~by:[ "src" ] c edges in
  let sub = rel [ "src"; "trg" ] [ [ 1; 2 ]; [ 2; 3 ]; [ 5; 5 ] ] in
  let b = Dds.of_rel ~by:[ "src" ] c sub in
  let i = Dds.set_inter_local a b in
  (* intersection = a \ (a \ b) *)
  check_rel "co-partitioned intersection" (Rel.diff edges (Rel.diff edges sub)) (Dds.collect i);
  check_bool "keeps left partitioning" true (Dds.partitioning i = Dds.Hashed [ "src" ]);
  (* empty right side clips everything *)
  let e = Dds.of_rel ~by:[ "src" ] c (rel [ "src"; "trg" ] []) in
  check_rel "empty right" (rel [ "src"; "trg" ] []) (Dds.collect (Dds.set_inter_local a e))

let test_rename () =
  let c = Cluster.make ~workers:2 () in
  let d = Dds.of_rel ~by:[ "src" ] c edges in
  let r = Dds.rename [ ("src", "a") ] d in
  check_bool "schema renamed" true (Schema.equal_ordered (Dds.schema r) (sch [ "a"; "trg" ]));
  check_bool "partitioning renamed" true (Dds.partitioning r = Dds.Hashed [ "a" ]);
  check_rel "values unchanged" (Rel.rename [ ("src", "a") ] edges) (Dds.collect r)

let test_single_worker () =
  let c = Cluster.make ~workers:1 () in
  let d = Dds.of_rel ~by:[ "src" ] c edges in
  check_rel "all ops on one worker"
    (Rel.natural_join edges (Rel.rename [ ("src", "trg"); ("trg", "n") ] edges))
    (Dds.collect (Dds.join_shuffle d (Dds.of_rel c (Rel.rename [ ("src", "trg"); ("trg", "n") ] edges))))

let test_parallel_domains () =
  (* same results with real multicore execution *)
  let c = Cluster.make ~parallel:true ~workers:4 () in
  let d = Dds.of_rel ~by:[ "src" ] c edges in
  let j = Dds.join_broadcast d (Rel.rename [ ("src", "trg"); ("trg", "n") ] edges) in
  check_rel "parallel join"
    (Rel.natural_join edges (Rel.rename [ ("src", "trg"); ("trg", "n") ] edges))
    (Dds.collect j)

let test_broadcast_token_metered_once () =
  let c = Cluster.make ~workers:4 () in
  let m = Cluster.metrics c in
  let d = Dds.of_rel ~by:[ "src" ] c edges in
  let bc = Dds.broadcast c (Rel.rename [ ("src", "trg"); ("trg", "n") ] edges) in
  let before = m.Metrics.broadcasts in
  ignore (Dds.join_bcast d bc);
  ignore (Dds.join_bcast d bc);
  ignore (Dds.join_bcast d bc);
  check_int "no re-broadcast" before m.Metrics.broadcasts

let test_metrics_accounting () =
  let m = Metrics.create () in
  Metrics.record_shuffle m ~records:100 ~bytes:3200;
  Metrics.record_shuffle m ~records:50 ~bytes:1600;
  Metrics.record_broadcast m ~records:10;
  Metrics.record_superstep m;
  check_int "shuffles" 2 m.Metrics.shuffles;
  check_int "records" 150 m.Metrics.shuffled_records;
  check_int "bytes" 4800 m.Metrics.shuffled_bytes;
  check_int "broadcast records" 10 m.Metrics.broadcast_records;
  check_int "supersteps" 1 m.Metrics.supersteps;
  check_bool "sim time grows" true (m.Metrics.sim_time_ns > 0.);
  let acc = Metrics.create () in
  Metrics.add acc m;
  Metrics.add acc m;
  check_int "accumulated" 4 acc.Metrics.shuffles;
  Metrics.reset m;
  check_int "reset" 0 m.Metrics.shuffles;
  check_int "tuple bytes" (16 + 24) (Metrics.tuple_bytes 3)

let test_deadline () =
  Deadline.set ~seconds_from_now:3600.;
  Deadline.check_now ();
  (* far future: ticks pass *)
  for _ = 1 to 100_000 do
    Deadline.tick ()
  done;
  Deadline.set ~seconds_from_now:(-1.);
  (match Deadline.check_now () with
  | () -> Alcotest.fail "expected Expired"
  | exception Deadline.Expired -> ());
  (* amortised tick also fires *)
  (match
     for _ = 1 to 100_000 do
       Deadline.tick ()
     done
   with
  | () -> Alcotest.fail "expected Expired from tick"
  | exception Deadline.Expired -> ());
  Deadline.clear ();
  check_bool "cleared" false (Deadline.active ());
  Deadline.check_now ()

(* ---- persistent worker-domain pool ---- *)

let test_pool_lifecycle () =
  let c = Cluster.make ~parallel:true ~workers:4 () in
  check_int "three pool domains" 3 (Cluster.pool_size c);
  Alcotest.(check (array int)) "stage on pool" [| 0; 1; 4; 9 |]
    (Cluster.run_stage c (fun w -> w * w));
  Alcotest.(check (array int)) "pool reused" [| 1; 2; 3; 4 |]
    (Cluster.run_stage c (fun w -> w + 1));
  Cluster.shutdown c;
  check_int "pool joined" 0 (Cluster.pool_size c);
  Alcotest.(check (array int)) "sequential after shutdown" [| 0; 2; 4; 6 |]
    (Cluster.run_stage c (fun w -> 2 * w));
  Cluster.shutdown c (* idempotent *)

let test_pool_survives_exception () =
  let c = Cluster.make ~parallel:true ~workers:4 () in
  (match Cluster.run_stage c (fun w -> if w = 2 then failwith "boom" else w) with
  | _ -> Alcotest.fail "expected the worker exception on the driver"
  | exception Failure msg -> Alcotest.(check string) "re-raised on driver" "boom" msg);
  check_int "pool still alive" 3 (Cluster.pool_size c);
  Alcotest.(check (array int)) "pool still serves stages" [| 0; 10; 20; 30 |]
    (Cluster.run_stage c (fun w -> 10 * w));
  Cluster.shutdown c

(* Single-driver invariant: a second evaluation dispatching a stage while
   one is in flight must be rejected (the admission queue in [Serve] is
   the only legitimate serialization point). Deterministic interleaving:
   the first dispatcher parks inside its stage until the second has been
   refused. *)
let test_concurrent_dispatch_guard () =
  let c = Cluster.make ~workers:2 () in
  let entered = Atomic.make false and proceed = Atomic.make false in
  let holder =
    Domain.spawn (fun () ->
        Cluster.run_stage c (fun w ->
            if w = 0 then begin
              Atomic.set entered true;
              while not (Atomic.get proceed) do
                Domain.cpu_relax ()
              done
            end;
            w))
  in
  while not (Atomic.get entered) do
    Domain.cpu_relax ()
  done;
  check_bool "cluster reports busy" true (Cluster.busy c);
  (match Cluster.run_stage c (fun w -> w) with
  | _ -> Alcotest.fail "expected Concurrent_dispatch"
  | exception Cluster.Concurrent_dispatch -> ());
  Atomic.set proceed true;
  Alcotest.(check (array int)) "holder's stage completed" [| 0; 1 |] (Domain.join holder);
  check_bool "idle again" false (Cluster.busy c);
  (* the guard resets: later (serialized) stages run normally *)
  Alcotest.(check (array int)) "stage after refusal" [| 0; 2 |]
    (Cluster.run_stage c (fun w -> 2 * w))

(* ---- pool + prepared joins through the physical layer ---- *)

module Exec = Physical.Exec
module Patterns = Mura.Patterns

(* deterministic graph with cycles, diamonds and a tail *)
let tier1_graph =
  Rel.of_tuples (sch [ "src"; "trg" ])
    (List.init 60 (fun i -> [| i mod 17; (i * 7 + 3) mod 17 |]))

let run_physical ~parallel ~prepared ?plan term =
  let c = Cluster.make ~parallel ~workers:4 () in
  let config =
    { (Exec.default_config c) with Exec.force_plan = plan; use_prepared_broadcast = prepared }
  in
  let ctx = Exec.session config [ ("E", tier1_graph) ] in
  let r = Exec.run ctx term in
  let m = Cluster.metrics c in
  let counters =
    ( m.Metrics.shuffles,
      m.Metrics.shuffled_records,
      m.Metrics.shuffled_bytes,
      m.Metrics.broadcasts,
      m.Metrics.broadcast_records )
  in
  Cluster.shutdown c;
  (List.sort compare (Rel.to_list r), counters)

let tier1_queries =
  [
    ("closure", Patterns.closure (Mura.Term.Rel "E"), [ None; Some Exec.P_gld ]);
    ( "reach",
      Patterns.reach (Value.of_int 0),
      [ None; Some Exec.P_gld; Some Exec.P_plw_s; Some Exec.P_plw_pg ] );
    ("same_generation", Patterns.same_generation (), [ None; Some Exec.P_gld ]);
  ]

let test_pool_matches_sequential () =
  List.iter
    (fun (name, term, plans) ->
      List.iter
        (fun plan ->
          let seq, _ = run_physical ~parallel:false ~prepared:true ?plan term in
          let par, _ = run_physical ~parallel:true ~prepared:true ?plan term in
          if seq <> par then Alcotest.failf "%s: parallel pool diverged from sequential" name)
        plans)
    tier1_queries

let test_prepared_metering_parity () =
  (* the prepared index is a pure driver-side cache: results and every
     communication counter must be bit-identical to the unprepared plan *)
  List.iter
    (fun (name, term, plans) ->
      List.iter
        (fun plan ->
          let r_p, m_p = run_physical ~parallel:false ~prepared:true ?plan term in
          let r_u, m_u = run_physical ~parallel:false ~prepared:false ?plan term in
          if r_p <> r_u then Alcotest.failf "%s: prepared result differs" name;
          if m_p <> m_u then Alcotest.failf "%s: prepared counters differ" name)
        plans)
    tier1_queries

(* property: any pipeline of distributed ops agrees with the centralized
   kernel *)
let random_graph_gen =
  let open QCheck2.Gen in
  let edge = pair (int_range 0 12) (int_range 0 12) in
  let+ edges = list_size (int_range 0 40) edge in
  Rel.of_tuples (sch [ "src"; "trg" ]) (List.map (fun (s, t) -> [| s; t |]) edges)

let qtest name gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:100 ~name gen prop)

let prop_distributed_join =
  qtest "distributed ≡ centralized join"
    QCheck2.Gen.(triple random_graph_gen random_graph_gen (int_range 1 6))
    (fun (a, b, workers) ->
      let c = Cluster.make ~workers () in
      let b' = Rel.rename [ ("src", "trg"); ("trg", "nxt") ] b in
      let expected = Rel.natural_join a b' in
      let shuffled = Dds.collect (Dds.join_shuffle (Dds.of_rel c a) (Dds.of_rel c b')) in
      let broadcast = Dds.collect (Dds.join_broadcast (Dds.of_rel c a) b') in
      Rel.equal expected shuffled && Rel.equal expected broadcast)

let prop_distinct_after_union =
  qtest "union+distinct ≡ set union"
    QCheck2.Gen.(triple random_graph_gen random_graph_gen (int_range 1 6))
    (fun (a, b, workers) ->
      let c = Cluster.make ~workers () in
      let u = Dds.union_distinct (Dds.of_rel ~by:[ "src" ] c a) (Dds.of_rel ~by:[ "trg" ] c b) in
      Rel.equal (Rel.union a b) (Dds.collect u)
      && Dds.cardinal u = Rel.cardinal (Rel.union a b))

let prop_prepared_bcast_join =
  qtest "prepared ≡ naive broadcast join/antijoin"
    QCheck2.Gen.(triple random_graph_gen random_graph_gen (int_range 1 6))
    (fun (a, b, workers) ->
      let c = Cluster.make ~workers () in
      let b' = Rel.rename [ ("src", "trg"); ("trg", "nxt") ] b in
      let d = Dds.of_rel c a in
      let bc = Dds.broadcast c b' in
      let p = Dds.prepare_bcast ~for_schema:(Dds.schema d) bc in
      Rel.equal (Rel.natural_join a b') (Dds.collect (Dds.join_bcast_prepared d p))
      && Rel.equal (Rel.antijoin a b') (Dds.collect (Dds.antijoin_bcast_prepared d p))
      (* reuse across "iterations": same handle, different probe side *)
      && Rel.equal
           (Rel.natural_join (Rel.select (Pred.Eq_const ("src", 1)) a) b')
           (Dds.collect
              (Dds.join_bcast_prepared (Dds.filter (Pred.Eq_const ("src", 1)) d) p)))

let prop_prepared_bcast_disjoint =
  qtest "prepared broadcast with no shared columns"
    QCheck2.Gen.(triple random_graph_gen random_graph_gen (int_range 1 6))
    (fun (a, b, workers) ->
      let c = Cluster.make ~workers () in
      let b' = Rel.rename [ ("src", "x"); ("trg", "y") ] b in
      let d = Dds.of_rel c a in
      let p = Dds.prepare_bcast ~for_schema:(Dds.schema d) (Dds.broadcast c b') in
      Rel.equal (Rel.natural_join a b') (Dds.collect (Dds.join_bcast_prepared d p))
      && Rel.equal (Rel.antijoin a b') (Dds.collect (Dds.antijoin_bcast_prepared d p)))

(* --- Metrics and histograms ----------------------------------------- *)

let check_float = Alcotest.(check (float 1e-9))

let test_metrics_record_arithmetic () =
  let m = Metrics.create () in
  Metrics.record_shuffle m ~records:10 ~bytes:100;
  check_int "shuffles" 1 m.Metrics.shuffles;
  check_int "shuffled_records" 10 m.Metrics.shuffled_records;
  check_int "shuffled_bytes" 100 m.Metrics.shuffled_bytes;
  check_float "shuffle sim time"
    (Metrics.ns_per_shuffle_round +. (10. *. Metrics.ns_per_shuffled_record))
    m.Metrics.sim_time_ns;
  Metrics.record_broadcast m ~records:5;
  check_int "broadcasts" 1 m.Metrics.broadcasts;
  check_int "broadcast_records" 5 m.Metrics.broadcast_records;
  check_float "broadcast sim time"
    (Metrics.ns_per_shuffle_round
    +. (10. *. Metrics.ns_per_shuffled_record)
    +. (5. *. Metrics.ns_per_broadcast_record))
    m.Metrics.sim_time_ns;
  Metrics.record_superstep m;
  Metrics.record_stage m ~max_worker_ns:1000.;
  check_int "supersteps" 1 m.Metrics.supersteps;
  check_int "stages" 1 m.Metrics.stages

let test_metrics_create_reset_add () =
  let mk () =
    let m = Metrics.create () in
    m.Metrics.shuffles <- 1;
    m.Metrics.shuffled_records <- 2;
    m.Metrics.shuffled_bytes <- 3;
    m.Metrics.broadcasts <- 4;
    m.Metrics.broadcast_records <- 5;
    m.Metrics.supersteps <- 6;
    m.Metrics.stages <- 7;
    m.Metrics.sim_time_ns <- 8.;
    Metrics.record_worker_time m ~worker:1 ~ns:100.;
    Metrics.record_partition_size m ~worker:1 ~records:50;
    Metrics.record_straggler m ~ratio:2.5;
    Metrics.record_dedup_dropped m ~records:9;
    m
  in
  let acc = mk () and m = mk () in
  Metrics.add acc m;
  check_int "add shuffles" 2 acc.Metrics.shuffles;
  check_int "add shuffled_records" 4 acc.Metrics.shuffled_records;
  check_int "add shuffled_bytes" 6 acc.Metrics.shuffled_bytes;
  check_int "add broadcasts" 8 acc.Metrics.broadcasts;
  check_int "add broadcast_records" 10 acc.Metrics.broadcast_records;
  check_int "add supersteps" 12 acc.Metrics.supersteps;
  check_int "add stages" 14 acc.Metrics.stages;
  check_float "add sim_time" 16. acc.Metrics.sim_time_ns;
  check_int "add dedup_dropped" 18 acc.Metrics.dedup_dropped_records;
  check_int "add worker_ns samples" 2 (Metrics.Hist.count acc.Metrics.worker_ns);
  check_float "add per-worker ns" 200. acc.Metrics.per_worker_ns.(1);
  check_float "add per-worker records" 100. acc.Metrics.per_worker_records.(1);
  check_float "straggler ratio survives add" 2.5 (Metrics.straggler_ratio acc);
  Metrics.reset acc;
  check_int "reset shuffles" 0 acc.Metrics.shuffles;
  check_int "reset shuffled_records" 0 acc.Metrics.shuffled_records;
  check_int "reset shuffled_bytes" 0 acc.Metrics.shuffled_bytes;
  check_int "reset broadcasts" 0 acc.Metrics.broadcasts;
  check_int "reset broadcast_records" 0 acc.Metrics.broadcast_records;
  check_int "reset supersteps" 0 acc.Metrics.supersteps;
  check_int "reset stages" 0 acc.Metrics.stages;
  check_float "reset sim_time" 0. acc.Metrics.sim_time_ns;
  check_int "reset dedup_dropped" 0 acc.Metrics.dedup_dropped_records;
  check_int "reset hist" 0 (Metrics.Hist.count acc.Metrics.worker_ns);
  check_float "reset straggler" 0. (Metrics.straggler_ratio acc);
  check_int "reset per-worker" 0 (Array.length acc.Metrics.per_worker_ns)

let test_tuple_bytes () =
  check_int "arity 0" 16 (Metrics.tuple_bytes 0);
  check_int "arity 2" 32 (Metrics.tuple_bytes 2);
  check_int "arity 5" 56 (Metrics.tuple_bytes 5)

let test_hist_empty () =
  let h = Metrics.Hist.create () in
  check_int "count" 0 (Metrics.Hist.count h);
  check_float "p50 of empty" 0. (Metrics.Hist.percentile h 50.);
  check_float "min" 0. (Metrics.Hist.min_value h);
  check_float "max" 0. (Metrics.Hist.max_value h);
  check_float "mean" 0. (Metrics.Hist.mean h);
  check_bool "no buckets" true (Metrics.Hist.buckets h = [])

let test_hist_single_bucket () =
  let h = Metrics.Hist.create () in
  (* all samples in bucket [4, 8): percentiles degenerate to the exact max *)
  List.iter (Metrics.Hist.add h) [ 7.; 7.; 7.; 7.; 7. ];
  check_int "count" 5 (Metrics.Hist.count h);
  check_float "p1" 7. (Metrics.Hist.percentile h 1.);
  check_float "p50" 7. (Metrics.Hist.percentile h 50.);
  check_float "p100" 7. (Metrics.Hist.percentile h 100.);
  check_float "mean" 7. (Metrics.Hist.mean h);
  check_bool "one bucket" true (List.length (Metrics.Hist.buckets h) = 1)

let test_hist_percentiles_ordered () =
  let h = Metrics.Hist.create () in
  for i = 0 to 99 do
    Metrics.Hist.add h (float_of_int (i * 10))
  done;
  let p q = Metrics.Hist.percentile h q in
  check_bool "p50 <= p90" true (p 50. <= p 90.);
  check_bool "p90 <= p99" true (p 90. <= p 99.);
  check_bool "p99 <= max" true (p 99. <= Metrics.Hist.max_value h);
  check_float "max exact" 990. (Metrics.Hist.max_value h);
  check_float "min exact" 0. (Metrics.Hist.min_value h);
  (* negative samples clamp to 0 *)
  Metrics.Hist.add h (-5.);
  check_float "clamped min" 0. (Metrics.Hist.min_value h)

let test_hist_merge () =
  let a = Metrics.Hist.create () and b = Metrics.Hist.create () in
  Metrics.Hist.add a 4.;
  Metrics.Hist.add b 1000.;
  Metrics.Hist.merge a b;
  check_int "merged count" 2 (Metrics.Hist.count a);
  check_float "merged total" 1004. (Metrics.Hist.total a);
  check_float "merged min" 4. (Metrics.Hist.min_value a);
  check_float "merged max" 1000. (Metrics.Hist.max_value a)

let test_stage_feeds_histograms () =
  let c = Cluster.make ~workers:4 () in
  let m = Cluster.metrics c in
  let d = Dds.of_rel c edges in
  (* a narrow compute stage (run_stage) samples worker times/stragglers;
     the partition-size histogram is fed by every exchange and stage *)
  ignore (Dds.collect (Dds.filter (Pred.Eq_const ("src", 1)) d));
  check_bool "worker times sampled" true (Metrics.Hist.count m.Metrics.worker_ns > 0);
  check_bool "partition sizes sampled" true (Metrics.Hist.count m.Metrics.partition_records > 0);
  check_bool "straggler ratio >= 1" true (Metrics.straggler_ratio m >= 1.);
  check_int "one per-worker slot per worker" 4 (Array.length m.Metrics.per_worker_ns)

(* -------------------------------------------------------------- *)
(* Two-phase pooled shuffle: parity with the sequential exchange   *)
(* -------------------------------------------------------------- *)

(* [src] unique; a [skew] fraction of tuples share one hot [trg] key, so
   repartitioning by [trg] is both heavily skewed and moves most rows —
   large enough to force bucket growth and Tset resizes on both paths. *)
let big_rel ?(n = 400) ?(skew = 0.5) () =
  let hot = int_of_float (skew *. float_of_int n) in
  Rel.of_tuples
    (sch [ "src"; "trg" ])
    (List.init n (fun i -> [| i; (if i < hot then 7 else i * 3) |]))

let shuffle_counters m =
  Metrics.(m.shuffles, m.shuffled_records, m.shuffled_bytes, m.broadcasts, m.broadcast_records)

(* Run [scenario] on a sequential and on a pooled cluster of the same
   size; result partitions and communication counters must be
   bit-identical (the contract the pooled exchange promises). *)
let check_shuffle_parity name ?(workers = 4) scenario =
  let run ~parallel =
    let c = Cluster.make ~parallel ~workers () in
    let d = scenario c in
    let parts = Array.init (Dds.num_partitions d) (fun i -> Tset.copy (Dds.partition d i)) in
    let cnt = shuffle_counters (Cluster.metrics c) in
    Cluster.shutdown c;
    (parts, cnt)
  in
  let seq_parts, seq_cnt = run ~parallel:false in
  let pool_parts, pool_cnt = run ~parallel:true in
  check_int (name ^ ": same partition count") (Array.length seq_parts) (Array.length pool_parts);
  Array.iteri
    (fun i p ->
      check_bool (Printf.sprintf "%s: partition %d identical" name i) true
        (Tset.equal p pool_parts.(i)))
    seq_parts;
  check_bool (name ^ ": counters identical") true (seq_cnt = pool_cnt)

let test_shuffle_parity_repartition () =
  let r = big_rel () in
  check_shuffle_parity "repartition" (fun c ->
      Dds.repartition ~by:[ "trg" ] (Dds.of_rel ~by:[ "src" ] c r))

let test_shuffle_parity_of_rel () =
  let r = big_rel ~skew:0.9 () in
  check_shuffle_parity "of_rel hashed" (fun c -> Dds.of_rel ~by:[ "trg" ] c r);
  check_shuffle_parity "of_rel round-robin" (fun c -> Dds.of_rel c r)

let test_shuffle_parity_collect () =
  let r = big_rel () in
  let run ~parallel =
    let c = Cluster.make ~parallel ~workers:4 () in
    let out = Dds.collect (Dds.of_rel ~by:[ "src" ] c r) in
    let cnt = shuffle_counters (Cluster.metrics c) in
    Cluster.shutdown c;
    (out, cnt)
  in
  let seq, seq_cnt = run ~parallel:false in
  let pool, pool_cnt = run ~parallel:true in
  check_rel "collect parity" seq pool;
  check_bool "collect counters identical" true (seq_cnt = pool_cnt)

let test_shuffle_parity_joins () =
  let a = big_rel ~n:120 ~skew:0.3 () in
  let b =
    Rel.of_tuples (sch [ "trg"; "dst" ]) (List.init 90 (fun i -> [| i * 2; i + 1000 |]))
  in
  check_shuffle_parity "join_shuffle" (fun c ->
      Dds.join_shuffle (Dds.of_rel ~by:[ "src" ] c a) (Dds.of_rel ~by:[ "dst" ] c b));
  check_shuffle_parity "antijoin_shuffle" (fun c ->
      Dds.antijoin_shuffle (Dds.of_rel ~by:[ "src" ] c a) (Dds.of_rel ~by:[ "dst" ] c b))

let test_shuffle_parity_edges () =
  let r = big_rel ~n:60 () in
  check_shuffle_parity "workers=1" ~workers:1 (fun c ->
      Dds.repartition ~by:[ "trg" ] (Dds.of_rel ~by:[ "src" ] c r));
  let empty = Rel.of_tuples (sch [ "src"; "trg" ]) [] in
  check_shuffle_parity "empty dataset" (fun c ->
      Dds.repartition ~by:[ "trg" ] (Dds.of_rel ~by:[ "src" ] c empty));
  check_shuffle_parity "empty round-robin" (fun c -> Dds.of_rel c empty)

let test_shuffle_knob () =
  check_bool "sequential cluster never pools" false
    (Cluster.pooled_shuffle (Cluster.make ~workers:4 ()));
  let c1 = Cluster.make ~parallel:true ~workers:1 () in
  check_bool "single worker never pools" false (Cluster.pooled_shuffle c1);
  Cluster.shutdown c1;
  let cp = Cluster.make ~parallel:true ~workers:4 () in
  check_bool "parallel multi-worker pools by default" true (Cluster.pooled_shuffle cp);
  Cluster.shutdown cp;
  let c = Cluster.make ~parallel:true ~use_parallel_shuffle:false ~workers:4 () in
  check_bool "knob disables pooled shuffle" false (Cluster.pooled_shuffle c);
  let r = big_rel ~n:80 () in
  let d = Dds.repartition ~by:[ "trg" ] (Dds.of_rel ~by:[ "src" ] c r) in
  check_rel "knob-off results still correct" r (Dds.collect d);
  Cluster.shutdown c

(* -------------------------------------------------------------- *)
(* Fused delta maintenance and the iteration-shuffle seen filter   *)
(* -------------------------------------------------------------- *)

let test_diff_union_in_place () =
  let c = Cluster.make ~workers:4 () in
  let produced_rel = rel [ "src"; "trg" ] [ [ 1; 2 ]; [ 5; 5 ]; [ 9; 9 ]; [ 7; 1 ] ] in
  let produced = Dds.of_rel ~by:[ "src" ] c produced_rel in
  (* unfused reference pair *)
  let acc_u = Dds.of_rel ~by:[ "src" ] c edges in
  let fresh_ref = Dds.set_diff_local produced acc_u in
  let union_ref = Dds.set_union_local acc_u fresh_ref in
  (* fused *)
  let acc = Dds.of_rel ~by:[ "src" ] c edges in
  let acc', fresh = Dds.diff_union_in_place ~acc ~produced in
  check_rel "fresh = produced \\ acc" (Dds.collect fresh_ref) (Dds.collect fresh);
  check_rel "acc' = acc ∪ produced" (Dds.collect union_ref) (Dds.collect acc');
  check_bool "accumulator mutated in place" true (Dds.partition acc 0 == Dds.partition acc' 0);
  check_int "acc saw the union" (Dds.cardinal union_ref) (Dds.cardinal acc);
  (* produced is never mutated *)
  check_rel "produced untouched" produced_rel (Dds.collect produced);
  (* a branch that is just the recursive variable hands the accumulator
     back as [produced]: nothing can be fresh, and the set must not be
     absorbed into itself *)
  let self = Dds.of_rel ~by:[ "src" ] c edges in
  let self', fresh0 = Dds.diff_union_in_place ~acc:self ~produced:self in
  check_int "self-absorb yields empty fresh" 0 (Dds.cardinal fresh0);
  check_rel "self-absorb keeps contents" edges (Dds.collect self')

let test_copy_parts_private () =
  let c = Cluster.make ~workers:3 () in
  let d = Dds.of_rel ~by:[ "src" ] c edges in
  let p = Dds.copy_parts d in
  check_bool "partitions reallocated" false (Dds.partition p 0 == Dds.partition d 0);
  ignore (Dds.diff_union_in_place ~acc:p ~produced:(Dds.of_rel ~by:[ "src" ] c (rel [ "src"; "trg" ] [ [ 100; 100 ] ])));
  check_int "original unchanged" (Rel.cardinal edges) (Dds.cardinal d);
  check_int "copy absorbed" (Rel.cardinal edges + 1) (Dds.cardinal p)

(* The seen filter drops re-routed tuples map-side: same drop counts and
   partitions on the sequential and pooled exchange paths. *)
let test_seen_filter_drops () =
  let r = big_rel ~n:200 () in
  let run ~parallel =
    let c = Cluster.make ~parallel ~workers:4 () in
    let m = Cluster.metrics c in
    let seen = Dds.seen_filter c in
    let d = Dds.of_rel ~by:[ "src" ] c r in
    let first = Dds.repartition ~seen ~by:[ "trg" ] d in
    check_int "nothing dropped on first routing" 0 (Dds.seen_dropped seen);
    check_int "first routing complete" (Rel.cardinal r) (Dds.cardinal first);
    let records_after_first = m.Metrics.shuffled_records in
    (* route the very same dataset again: everything was seen *)
    let again = Dds.repartition ~seen ~by:[ "trg" ] d in
    check_int "re-derivations dropped" (Rel.cardinal r) (Dds.seen_dropped seen);
    check_int "second routing empty" 0 (Dds.cardinal again);
    check_int "drops metered" (Rel.cardinal r) m.Metrics.dedup_dropped_records;
    check_int "dropped tuples not shuffled" records_after_first m.Metrics.shuffled_records;
    let out = Dds.collect first in
    let cnt = (Dds.seen_dropped seen, m.Metrics.dedup_dropped_records, shuffle_counters m) in
    Cluster.shutdown c;
    (out, cnt)
  in
  let seq_out, seq_cnt = run ~parallel:false in
  let pool_out, pool_cnt = run ~parallel:true in
  check_rel "seq/pooled filtered partitions agree" seq_out pool_out;
  check_bool "seq/pooled dedup counters identical" true (seq_cnt = pool_cnt)

(* antijoin_shuffle must sample output-partition sizes like every other
   wide op: two repartitions (4 samples each on 4 workers) plus the
   output skew pass = exactly 12 new histogram samples. *)
let test_antijoin_feeds_partition_hist () =
  let c = Cluster.make ~workers:4 () in
  let m = Cluster.metrics c in
  let a = Dds.of_rel c (rel [ "x"; "y" ] [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 4; 5 ] ]) in
  let b = Dds.of_rel c (rel [ "y"; "z" ] [ [ 2; 9 ]; [ 5; 9 ] ]) in
  let before = Metrics.Hist.count m.Metrics.partition_records in
  ignore (Dds.antijoin_shuffle a b);
  check_int "repartitions + output skew sampled" (before + 12)
    (Metrics.Hist.count m.Metrics.partition_records)

let test_adaptive_shuffle_mode () =
  (* sequential clusters can never pool, whatever the volume *)
  let seq = Cluster.make ~workers:4 () in
  check_bool "sequential -> Seq" true (Cluster.shuffle_mode seq ~records:1_000_000 = `Seq);
  (* adaptivity off: every eligible exchange pooled, even tiny ones *)
  let forced = Cluster.make ~parallel:true ~adaptive_shuffle:false ~workers:2 () in
  check_bool "adaptivity off -> Pooled" true (Cluster.shuffle_mode forced ~records:1 = `Pooled);
  (* adaptive: the measured volume decides (cutoff rises with scarce
     cores but is always in (8, 1_000_000) for any host) *)
  let ad = Cluster.make ~parallel:true ~workers:2 () in
  check_bool "adaptive on" true (Cluster.adaptive_shuffle ad);
  check_bool "host cores sampled" true (Cluster.host_cores ad >= 1);
  check_bool "tiny exchange -> Seq" true (Cluster.shuffle_mode ad ~records:8 = `Seq);
  check_bool "bulk exchange -> Pooled" true (Cluster.shuffle_mode ad ~records:1_000_000 = `Pooled);
  List.iter Cluster.shutdown [ forced; ad ]

let () =
  Alcotest.run "distsim"
    [
      ( "metrics",
        [
          Alcotest.test_case "record arithmetic" `Quick test_metrics_record_arithmetic;
          Alcotest.test_case "create/reset/add all fields" `Quick test_metrics_create_reset_add;
          Alcotest.test_case "tuple_bytes" `Quick test_tuple_bytes;
          Alcotest.test_case "hist empty" `Quick test_hist_empty;
          Alcotest.test_case "hist single bucket" `Quick test_hist_single_bucket;
          Alcotest.test_case "hist percentiles ordered" `Quick test_hist_percentiles_ordered;
          Alcotest.test_case "hist merge" `Quick test_hist_merge;
          Alcotest.test_case "stages feed histograms" `Quick test_stage_feeds_histograms;
        ] );
      ( "basics",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "hash colocation" `Quick test_hash_partitioning_colocates;
          Alcotest.test_case "single worker" `Quick test_single_worker;
          Alcotest.test_case "parallel domains" `Quick test_parallel_domains;
        ] );
      ( "pool",
        [
          Alcotest.test_case "lifecycle" `Quick test_pool_lifecycle;
          Alcotest.test_case "survives worker exception" `Quick test_pool_survives_exception;
          Alcotest.test_case "pool ≡ sequential on tier-1 queries" `Quick test_pool_matches_sequential;
          Alcotest.test_case "prepared metering parity" `Quick test_prepared_metering_parity;
          Alcotest.test_case "concurrent dispatch refused" `Quick test_concurrent_dispatch_guard;
        ] );
      ( "narrow",
        [
          Alcotest.test_case "filter" `Quick test_filter_narrow;
          Alcotest.test_case "set_diff_local" `Quick test_set_diff_local;
          Alcotest.test_case "set_inter_local" `Quick test_set_inter_local;
          Alcotest.test_case "rename" `Quick test_rename;
        ] );
      ( "fused delta",
        [
          Alcotest.test_case "diff_union_in_place" `Quick test_diff_union_in_place;
          Alcotest.test_case "copy_parts is private" `Quick test_copy_parts_private;
          Alcotest.test_case "seen filter drop counter" `Quick test_seen_filter_drops;
        ] );
      ( "wide",
        [
          Alcotest.test_case "repartition" `Quick test_repartition_noop_and_move;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "distinct free when hashed" `Quick test_distinct_free_when_hashed;
        ] );
      ( "joins",
        [
          Alcotest.test_case "broadcast join" `Quick test_join_broadcast;
          Alcotest.test_case "shuffle join" `Quick test_join_shuffle;
          Alcotest.test_case "antijoins" `Quick test_antijoin_modes;
          Alcotest.test_case "broadcast token" `Quick test_broadcast_token_metered_once;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "accounting" `Quick test_metrics_accounting;
          Alcotest.test_case "deadline" `Quick test_deadline;
        ] );
      ( "shuffle parity",
        [
          Alcotest.test_case "repartition" `Quick test_shuffle_parity_repartition;
          Alcotest.test_case "of_rel" `Quick test_shuffle_parity_of_rel;
          Alcotest.test_case "collect" `Quick test_shuffle_parity_collect;
          Alcotest.test_case "joins" `Quick test_shuffle_parity_joins;
          Alcotest.test_case "workers=1 and empty" `Quick test_shuffle_parity_edges;
          Alcotest.test_case "use_parallel_shuffle knob" `Quick test_shuffle_knob;
          Alcotest.test_case "adaptive mode selection" `Quick test_adaptive_shuffle_mode;
          Alcotest.test_case "antijoin feeds partition hist" `Quick
            test_antijoin_feeds_partition_hist;
        ] );
      ( "properties",
        [
          prop_distributed_join;
          prop_distinct_after_union;
          prop_prepared_bcast_join;
          prop_prepared_bcast_disjoint;
        ] );
    ]
