(* Integration tests: every system driver produces the same result sizes
   on common workloads; the harness reports failures/timeouts cleanly. *)

open Relation
module S = Harness.Systems
module Q = Harness.Queries
module R = Harness.Runner

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_yago = lazy (Graphgen.Yago_like.generate ~seed:1 ~scale:800 ())

let result_size = function
  | S.Success s -> Some s.result_size
  | S.Failed _ | S.Timeout _ -> None

let test_systems_agree_on_query text =
  let w = S.of_ucrpq (Lazy.force small_yago) text in
  let outcomes =
    List.map
      (fun (sys : S.system) -> (sys.name, R.run_one ~timeout_s:120. sys w))
      (S.all ())
  in
  let sizes = List.filter_map (fun (n, o) -> Option.map (fun s -> (n, s)) (result_size o)) outcomes in
  check_bool "at least four systems answered" true (List.length sizes >= 4);
  match sizes with
  | [] -> Alcotest.fail "no system answered"
  | (_, first) :: rest ->
    List.iter
      (fun (name, s) ->
        if s <> first then
          Alcotest.failf "%s disagrees: %d vs %d on %s" name s first text)
      rest

let test_simple_filter_query () = test_systems_agree_on_query "?x <- ?x isLocatedIn+ Japan"
let test_left_filter_query () = test_systems_agree_on_query "?x <- Japan dealsWith+ ?x"
let test_concat_query () = test_systems_agree_on_query "?x, ?y <- ?x livesIn/isLocatedIn+ ?y"

let test_mu_only_workload () =
  (* same generation on a small tree: no UCRPQ form, so GraphX must
     report an unsupported failure while the others agree *)
  let tree = Graphgen.Generators.random_tree ~seed:2 ~nodes:300 () in
  let w = Q.same_generation_workload tree in
  let dist = R.run_one (S.dist_mu_ra ()) w in
  let central = R.run_one (S.centralized_mu_ra ()) w in
  let big = R.run_one (S.bigdatalog ()) w in
  (match (result_size dist, result_size central, result_size big) with
  | Some a, Some b, Some c when a = b && b = c -> ()
  | a, b, c ->
    Alcotest.failf "disagreement: dist=%s central=%s big=%s"
      (match a with Some n -> string_of_int n | None -> "fail")
      (match b with Some n -> string_of_int n | None -> "fail")
      (match c with Some n -> string_of_int n | None -> "fail"));
  match R.run_one (S.graphx ()) w with
  | S.Failed _ -> ()
  | _ -> Alcotest.fail "graphx should not support mu-only workloads"

let test_reach_and_anbn () =
  let g = Graphgen.Generators.erdos_renyi ~seed:3 ~nodes:300 ~p:0.005 () in
  let w = Q.reach_workload g (Value.of_int 0) in
  (match (result_size (R.run_one (S.dist_mu_ra ()) w), result_size (R.run_one (S.bigdatalog ()) w)) with
  | Some a, Some b -> check_int "reach agreement" a b
  | _ -> Alcotest.fail "reach failed");
  let lg = Graphgen.Generators.labelled_chain ~labels:[ "a"; "b" ] ~segment:6 in
  let w2 = Q.anbn_workload lg ~a:"a" ~b:"b" in
  match (result_size (R.run_one (S.dist_mu_ra ()) w2), result_size (R.run_one (S.bigdatalog ()) w2)) with
  | Some a, Some b -> check_int "anbn agreement" a b
  | _ -> Alcotest.fail "anbn failed"

(* exhaustive agreement: all 25 Yago + 24 Uniprot queries, three engines *)
let agreement_over specs graph =
  let systems = [ S.dist_mu_ra (); S.centralized_mu_ra (); S.bigdatalog () ] in
  List.iter
    (fun (q : Q.spec) ->
      let w = S.of_ucrpq graph q.text in
      let sizes =
        List.filter_map
          (fun (sys : S.system) -> result_size (R.run_one ~timeout_s:60. sys w))
          systems
      in
      match sizes with
      | a :: rest when List.for_all (( = ) a) rest && List.length sizes = 3 -> ()
      | _ ->
        Alcotest.failf "%s: disagreement or failure (%s)" q.id
          (String.concat ","
             (List.map
                (fun (sys : S.system) -> R.cell_text (R.run_one ~timeout_s:60. sys w))
                systems)))
    specs

let test_all_yago_queries_agree () =
  agreement_over Q.yago (Graphgen.Yago_like.generate ~seed:9 ~scale:500 ())

let test_all_uniprot_queries_agree () =
  let g = Graphgen.Uniprot_like.generate ~seed:10 ~scale:1_200 () in
  agreement_over (Q.uniprot g) g

let test_query_sets_parse () =
  List.iter
    (fun (q : Q.spec) ->
      match Rpq.Query.parse q.text with
      | (_ : Rpq.Query.t) -> ()
      | exception e -> Alcotest.failf "%s does not parse: %s" q.id (Printexc.to_string e))
    Q.yago;
  let uniprot_graph = Graphgen.Uniprot_like.generate ~seed:5 ~scale:2_000 () in
  List.iter
    (fun (q : Q.spec) ->
      match Rpq.Query.to_term (Rpq.Query.parse q.text) with
      | (_ : Mura.Term.t) -> ()
      | exception e -> Alcotest.failf "%s does not translate: %s" q.id (Printexc.to_string e))
    (Q.uniprot uniprot_graph);
  check_int "25 yago queries" 25 (List.length Q.yago);
  check_int "24 uniprot queries" 24 (List.length (Q.uniprot uniprot_graph))

let test_every_yago_query_translates () =
  List.iter
    (fun (q : Q.spec) ->
      match Rpq.Query.to_term (Rpq.Query.parse q.text) with
      | t -> check_bool (q.id ^ " has a fixpoint") true (Mura.Term.fix_count t >= 1)
      | exception e -> Alcotest.failf "%s: %s" q.id (Printexc.to_string e))
    Q.yago

let test_classification () =
  let classes text = Q.classify (Rpq.Query.parse text) in
  let check_classes msg expected text =
    Alcotest.(check (list string)) msg
      (List.map Q.class_name expected)
      (List.map Q.class_name (classes text))
  in
  (* the paper's defining examples for each class *)
  check_classes "C1" [ Q.C1 ] "?x, ?y <- ?x a+ ?y";
  check_classes "C2" [ Q.C2 ] "?x <- ?x a+ C";
  check_classes "C3" [ Q.C3 ] "?x <- C a+ ?x";
  check_classes "C4" [ Q.C4 ] "?x, ?y <- ?x a+/b ?y";
  check_classes "C5" [ Q.C5 ] "?x, ?y <- ?x b/a+ ?y";
  check_classes "C6" [ Q.C6 ] "?x, ?y <- ?x a+/b+ ?y";
  (* the paper's combined example: ?x <- C a/b+ ?x is C3 and C5 *)
  check_classes "C3+C5 combination" [ Q.C3; Q.C5 ] "?x <- C a/b+ ?x";
  (* alternation containing a closure is recursive *)
  check_classes "closure inside alternation" [ Q.C1 ] "?x, ?y <- ?x (a b+)+ ?y";
  (* no recursion: no classes *)
  check_classes "no recursion" [] "?x, ?y <- ?x a/b ?y"

let test_union_workload_agreement () =
  let g = Lazy.force small_yago in
  let text = "?x <- ?x isLocatedIn+ Japan union ?x <- ?x isLocatedIn+ Germany" in
  let w = S.of_ucrpq g text in
  let outcomes =
    List.map
      (fun (sys : S.system) -> (sys.name, R.run_one ~timeout_s:60. sys w))
      [ S.dist_mu_ra (); S.centralized_mu_ra (); S.bigdatalog (); S.graphx () ]
  in
  let sizes = List.filter_map (fun (n, o) -> Option.map (fun s -> (n, s)) (result_size o)) outcomes in
  check_int "all four answered" 4 (List.length sizes);
  match sizes with
  | (_, first) :: rest ->
    List.iter (fun (n, s) -> if s <> first then Alcotest.failf "%s disagrees on union" n) rest
  | [] -> Alcotest.fail "nobody answered"

let test_concat_closure_builder () =
  Alcotest.(check string) "n=3" "?x, ?y <- ?x a1+/a2+/a3+ ?y"
    (Q.concat_closure ~labels:[ "a1"; "a2"; "a3" ]);
  let g = Graphgen.Generators.labelled_chain ~labels:[ "a1"; "a2" ] ~segment:4 in
  let w = S.of_ucrpq g (Q.concat_closure ~labels:[ "a1"; "a2" ]) in
  match (result_size (R.run_one (S.dist_mu_ra ()) w), result_size (R.run_one (S.bigdatalog ()) w)) with
  | Some a, Some b ->
    check_int "concat closures agree" a b;
    check_bool "nonempty" true (a > 0)
  | _ -> Alcotest.fail "concat closure failed"

let test_timeout_reporting () =
  let w = S.of_ucrpq (Lazy.force small_yago) "?a, ?b <- ?a isLocatedIn+ ?b" in
  match R.run_one ~timeout_s:0.000001 (S.dist_mu_ra ()) w with
  | S.Timeout _ -> ()
  | o -> Alcotest.failf "expected timeout, got %s" (R.cell_text o)

let test_failure_reporting () =
  let w = S.of_ucrpq (Lazy.force small_yago) "?a, ?b <- ?a isLocatedIn+ ?b" in
  match R.run_one (S.myria ~max_facts:3 ()) w with
  | S.Failed _ -> ()
  | o -> Alcotest.failf "expected failure, got %s" (R.cell_text o)

let test_runner_matrix_and_table () =
  let g = Lazy.force small_yago in
  let systems = [ S.dist_mu_ra (); S.centralized_mu_ra () ] in
  let workloads =
    [ ("Q19", S.of_ucrpq g "?a <- ?a isLocatedIn+/isLocatedIn Japan") ]
  in
  let rows = R.run_matrix ~systems workloads in
  check_int "one row" 1 (List.length rows);
  check_int "two cells" 2 (List.length (List.hd rows).cells);
  (* table printing must not raise *)
  R.print_table ~title:"test" ~columns:(List.map (fun (s : S.system) -> s.name) systems) rows

(* --- EXPLAIN / EXPLAIN ANALYZE --------------------------------------- *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let analyze_graph = lazy (Graphgen.Generators.erdos_renyi ~seed:7 ~nodes:400 ~p:0.004 ())
let analyze_query = "?x, ?y <- ?x a+ ?y"

let analysis =
  lazy
    (R.analyze ~workers:4
       ~graph:(Graphgen.Generators.add_labels ~labels:[ "a" ] (Lazy.force analyze_graph))
       ~query:analyze_query ())

let test_explain_text () =
  let g = Graphgen.Generators.add_labels ~labels:[ "a" ] (Lazy.force analyze_graph) in
  let s = R.explain ~graph:g ~query:analyze_query () in
  check_bool "logical plan" true (contains s "logical plan");
  check_bool "physical plan" true (contains s "physical plan")

let test_analyze_annotated_plan () =
  let a = Lazy.force analysis in
  check_bool "actual rows annotated" true (contains a.R.a_annotated_plan "rows=");
  check_bool "estimates annotated" true (contains a.R.a_annotated_plan "est=");
  check_bool "q-errors annotated" true (contains a.R.a_annotated_plan "err=");
  check_bool "ranked mis-estimates" true (a.R.a_mismatches <> []);
  check_bool "query q-error >= 1" true (a.R.a_q_error >= 1.);
  (* the analyzed run's root actual must match the plain outcome *)
  match a.R.a_outcome with
  | S.Success s -> check_int "tree root = result size" s.result_size a.R.a_tree.rows
  | o -> Alcotest.failf "analyze outcome: %s" (R.cell_text o)

let test_analyze_skew_table () =
  let a = Lazy.force analysis in
  let t = R.skew_table a.R.a_metrics in
  check_bool "straggler ratio" true (contains t "straggler");
  check_bool "per-worker rows" true (contains t "worker")

let test_report_json_keys () =
  let a = Lazy.force analysis in
  let json = R.report_json a in
  List.iter
    (fun key -> check_bool ("report has " ^ key) true (contains json ("\"" ^ key ^ "\"")))
    [
      "query"; "system"; "workers"; "logical_plan"; "physical_plan"; "outcome"; "metrics";
      "straggler_ratio"; "operators"; "q_error"; "mis_estimates"; "shuffled_records";
      "worker_ns"; "per_worker_ns";
    ];
  (* print_analysis must not raise *)
  R.print_analysis a

(* --- streaming scenario: repair vs recompute ------------------------- *)

let test_stream_mix_smoke () =
  let g = Graphgen.Generators.erdos_renyi ~seed:11 ~nodes:60 ~p:0.04 () in
  let config =
    { Harness.Stream_mix.default_config with rounds = 4; batch = 3; queries_per_round = 1 }
  in
  let r = Harness.Stream_mix.run config ~graph:g in
  check_int "no parity failures" 0 r.Harness.Stream_mix.parity_failures;
  check_int "all queries answered" (4 * 3 * 2) r.Harness.Stream_mix.completed;
  check_bool "repairs happened" true (r.Harness.Stream_mix.repaired > 0);
  check_bool "baseline never repairs" true
    (r.Harness.Stream_mix.baseline_stats.Serve.repaired = 0);
  (* the report is valid JSON with the gating keys *)
  let json = Harness.Stream_mix.report_json r in
  List.iter
    (fun key -> check_bool ("report has " ^ key) true (contains json ("\"" ^ key ^ "\"")))
    [
      "kind"; "rounds"; "parity_failures"; "repaired"; "repair_fallbacks"; "repair_ms";
      "recompute_ms"; "speedup"; "repair_server"; "baseline_server";
    ]

let () =
  Alcotest.run "harness"
    [
      ( "cross-system agreement",
        [
          Alcotest.test_case "right filter" `Slow test_simple_filter_query;
          Alcotest.test_case "left filter" `Slow test_left_filter_query;
          Alcotest.test_case "concatenation" `Slow test_concat_query;
          Alcotest.test_case "mu-only workloads" `Slow test_mu_only_workload;
          Alcotest.test_case "reach + anbn" `Slow test_reach_and_anbn;
          Alcotest.test_case "all 25 yago queries" `Slow test_all_yago_queries_agree;
          Alcotest.test_case "all 24 uniprot queries" `Slow test_all_uniprot_queries_agree;
        ] );
      ( "query sets",
        [
          Alcotest.test_case "parse" `Quick test_query_sets_parse;
          Alcotest.test_case "yago translation" `Quick test_every_yago_query_translates;
          Alcotest.test_case "classification" `Quick test_classification;
          Alcotest.test_case "union workload" `Quick test_union_workload_agreement;
          Alcotest.test_case "concat closures" `Quick test_concat_closure_builder;
        ] );
      ( "outcomes",
        [
          Alcotest.test_case "timeout" `Quick test_timeout_reporting;
          Alcotest.test_case "failure" `Quick test_failure_reporting;
          Alcotest.test_case "matrix/table" `Quick test_runner_matrix_and_table;
        ] );
      ( "stream",
        [ Alcotest.test_case "stream mix smoke" `Quick test_stream_mix_smoke ] );
      ( "analyze",
        [
          Alcotest.test_case "explain" `Quick test_explain_text;
          Alcotest.test_case "annotated plan" `Quick test_analyze_annotated_plan;
          Alcotest.test_case "skew table" `Quick test_analyze_skew_table;
          Alcotest.test_case "report json" `Quick test_report_json_keys;
        ] );
    ]
