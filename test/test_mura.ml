(* Tests for the mu-RA core: the paper's worked example (Sec. II),
   F_cond, the stabilizer, and semi-naive vs naive evaluation. *)

open Relation
open Mura

let sch = Schema.of_list
let rel schema rows = Rel.of_list (sch schema) rows
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_rel msg expected actual =
  if not (Rel.equal expected actual) then
    Alcotest.failf "%s:@.expected %a@.got %a" msg Rel.pp_full expected Rel.pp_full actual

(* The graph of Fig. 2 (reconstructed to match the X_1..X_4 iterations of
   Example 2 exactly). *)
let fig2_edges =
  rel [ "src"; "trg" ]
    [
      [ 1; 2 ]; [ 1; 4 ]; [ 10; 11 ]; [ 10; 13 ];
      [ 2; 3 ]; [ 4; 5 ]; [ 11; 5 ]; [ 13; 12 ]; [ 3; 6 ]; [ 5; 6 ];
    ]

let fig2_start = rel [ "src"; "trg" ] [ [ 1; 2 ]; [ 1; 4 ]; [ 10; 11 ]; [ 10; 13 ] ]

let fig2_env () = Eval.env [ ("E", fig2_edges); ("S", fig2_start) ]

(* mu(X = S ∪ pi~_c(rho_trg^c(X) ⋈ rho_src^c(E))) — Example 2. *)
let example2_term =
  Term.Fix
    ( "X",
      Term.Union
        ( Term.Rel "S",
          Term.Antiproject
            ( [ "c" ],
              Term.Join
                (Term.rename1 "trg" "c" (Term.Var "X"), Term.rename1 "src" "c" (Term.Rel "E"))
            ) ) )

let example2_expected =
  rel [ "src"; "trg" ]
    [
      [ 1; 2 ]; [ 1; 4 ]; [ 10; 11 ]; [ 10; 13 ];
      [ 1; 3 ]; [ 1; 5 ]; [ 10; 5 ]; [ 10; 12 ];
      [ 1; 6 ]; [ 10; 6 ];
    ]

let test_example1 () =
  (* pairs connected by a path of length 2 starting from S *)
  let t =
    Term.Antiproject
      ( [ "c" ],
        Term.Join (Term.rename1 "trg" "c" (Term.Rel "S"), Term.rename1 "src" "c" (Term.Rel "E"))
      )
  in
  check_rel "example 1"
    (rel [ "src"; "trg" ] [ [ 1; 3 ]; [ 1; 5 ]; [ 10; 5 ]; [ 10; 12 ] ])
    (Eval.eval (fig2_env ()) t)

let test_example2_semi_naive () =
  let stats = Eval.fresh_stats () in
  let result = Eval.eval ~stats (fig2_env ()) example2_term in
  check_rel "example 2 fixpoint" example2_expected result;
  (* X1 seeds, X2 and X3 add tuples, X4 detects the fixpoint *)
  check_int "iterations" 3 stats.iterations

let test_example2_naive () =
  check_rel "naive agrees" example2_expected (Eval.eval_naive (fig2_env ()) example2_term)

let test_typing () =
  let tenv =
    Typing.env [ ("E", sch [ "src"; "trg" ]); ("S", sch [ "src"; "trg" ]) ]
  in
  check_bool "example2 well-typed" true (Typing.well_typed tenv example2_term);
  let s = Typing.infer tenv example2_term in
  check_bool "schema src,trg" true (Schema.equal_names s (sch [ "src"; "trg" ]));
  (* ill-typed: union of different schemas *)
  check_bool "bad union" false
    (Typing.well_typed tenv (Term.Union (Term.Rel "E", Term.Project ([ "src" ], Term.Rel "E"))));
  (* unknown relation *)
  check_bool "unknown rel" false (Typing.well_typed tenv (Term.Rel "nope"));
  (* unbound variable *)
  check_bool "unbound var" false (Typing.well_typed tenv (Term.Var "X"))

let test_free_vars_subst () =
  (* X is bound by the Fix, so no free vars at top level *)
  Alcotest.(check (list string)) "no free vars at top" [] (Term.free_vars example2_term);
  Alcotest.(check (list string)) "free rels" [ "S"; "E" ] (Term.free_rels example2_term);
  let body = match example2_term with Term.Fix (_, b) -> b | _ -> assert false in
  Alcotest.(check (list string)) "body has X free" [ "X" ] (Term.free_vars body);
  let substituted = Term.subst "X" (Term.Rel "S") body in
  Alcotest.(check (list string)) "after subst" [] (Term.free_vars substituted)

let test_fcond_classification () =
  let open Term in
  let e = Rel "E" in
  (* not positive: mu(X = E ∪ (E ▷ X)) *)
  let not_positive = Fix ("X", Union (e, Antijoin (e, Var "X"))) in
  (* not linear: mu(X = E ∪ X ⋈ X) *)
  let not_linear = Fix ("X", Union (e, Join (Var "X", Var "X"))) in
  (* mutually recursive: mu(X = E ∪ mu(Y = X ∪ Y)) *)
  let mutual = Fix ("X", Union (e, Fix ("Y", Union (Var "X", Var "Y")))) in
  check_bool "ex2 ok" true (Result.is_ok (Fcond.check_term example2_term));
  check_bool "not positive" false (Result.is_ok (Fcond.check_term not_positive));
  check_bool "not linear" false (Result.is_ok (Fcond.check_term not_linear));
  check_bool "mutual" false (Result.is_ok (Fcond.check_term mutual));
  (* nested but legal: inner fixpoint does not mention X *)
  let ok_nested = Fix ("X", Union (Fix ("Y", Union (e, Var "Y")), Var "X")) in
  check_bool "legal nesting" true (Result.is_ok (Fcond.check_term ok_nested))

let test_decompose () =
  let body = match example2_term with Term.Fix (_, b) -> b | _ -> assert false in
  let r, phi = Fcond.decompose ~var:"X" body in
  check_bool "constant part is S" true (Term.equal r (Term.Rel "S"));
  check_bool "phi mentions X" true (Term.has_free_var "X" phi);
  (* a filter wrapped around the union distributes into both branches *)
  let filtered = Term.Select (Pred.Eq_const ("src", 1), body) in
  let consts, recs = Fcond.split ~var:"X" filtered in
  check_int "one constant branch" 1 (List.length consts);
  check_int "one recursive branch" 1 (List.length recs)

let test_stabilizer () =
  let tenv = Typing.env [ ("E", sch [ "src"; "trg" ]); ("S", sch [ "src"; "trg" ]) ] in
  let body = match example2_term with Term.Fix (_, b) -> b | _ -> assert false in
  Alcotest.(check (list string)) "src stable, trg not" [ "src" ]
    (Stabilizer.stable_columns tenv ~var:"X" body);
  (* reversed fixpoint: trg is stable instead *)
  let reversed =
    Term.Union
      ( Term.Rel "S",
        Term.Antiproject
          ( [ "c" ],
            Term.Join
              (Term.rename1 "trg" "c" (Term.Rel "E"), Term.rename1 "src" "c" (Term.Var "X")) ) )
  in
  Alcotest.(check (list string)) "reversed: trg stable" [ "trg" ]
    (Stabilizer.stable_columns tenv ~var:"X" reversed)

let test_stable_filter_push_identity () =
  (* Filtering on a stable column before or after the fixpoint agrees
     (the identity that justifies both filter pushing and P_plw
     repartitioning). *)
  let e = fig2_env () in
  let p = Pred.Eq_const ("src", 10) in
  let after = Rel.select p (Eval.eval e example2_term) in
  let pushed =
    match example2_term with
    | Term.Fix (x, Term.Union (r, phi)) -> Term.Fix (x, Term.Union (Term.Select (p, r), phi))
    | _ -> assert false
  in
  check_rel "push filter on stable column" after (Eval.eval e pushed)

let test_patterns_closure () =
  let e = Eval.env [ ("E", fig2_edges) ] in
  let tc = Eval.eval e (Patterns.closure (Term.Rel "E")) in
  let tc_rev = Eval.eval e (Patterns.closure_rev (Term.Rel "E")) in
  check_rel "closure = reversed closure" tc tc_rev;
  (* reachability facts *)
  check_bool "1 reaches 6" true (Rel.mem tc [| 1; 6 |]);
  check_bool "10 reaches 12" true (Rel.mem tc [| 10; 12 |]);
  check_bool "6 reaches nothing" false (Rel.exists (fun tu -> tu.(0) = 6) tc)
  [@@warning "-32"]

let test_patterns_reach () =
  let e = Eval.env [ ("E", fig2_edges) ] in
  let r = Eval.eval e (Patterns.reach (Value.of_int 10)) in
  check_rel "reach(10)"
    (rel [ "trg" ] [ [ 11 ]; [ 13 ]; [ 5 ]; [ 12 ]; [ 6 ] ])
    r

let test_patterns_same_generation () =
  (* tiny tree: 0 -> 1, 0 -> 2; 1 -> 3; 2 -> 4 *)
  let parent = rel [ "src"; "trg" ] [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 3 ]; [ 2; 4 ] ] in
  let e = Eval.env [ ("E", parent) ] in
  let sg = Eval.eval e (Patterns.same_generation ()) in
  check_bool "siblings" true (Rel.mem sg [| 1; 2 |]);
  check_bool "cousins" true (Rel.mem sg [| 3; 4 |]);
  check_bool "not cross-generation" false (Rel.mem sg [| 1; 4 |]);
  check_bool "reflexive pairs present" true (Rel.mem sg [| 1; 1 |])

let test_patterns_anbn () =
  let a = Value.of_string "a" and b = Value.of_string "b" in
  (* path: 0 -a-> 1 -a-> 2 -b-> 3 -b-> 4, plus 2 -b-> 5 *)
  let r =
    Rel.of_list (sch [ "src"; "pred"; "trg" ])
      [ [ 0; a; 1 ]; [ 1; a; 2 ]; [ 2; b; 3 ]; [ 3; b; 4 ]; [ 2; b; 5 ] ]
  in
  let e = Eval.env [ ("R", r) ] in
  let res = Eval.eval e (Patterns.anbn ~a:"a" ~b:"b" ()) in
  check_bool "a^1 b^1: (1,3)" true (Rel.mem res [| 1; 3 |]);
  check_bool "a^1 b^1: (1,5)" true (Rel.mem res [| 1; 5 |]);
  check_bool "a^2 b^2: (0,4)" true (Rel.mem res [| 0; 4 |]);
  check_bool "not a^2 b^1" false (Rel.mem res [| 0; 3 |])

(* ------------------------------------------------------------------ *)
(* Aggregate fixpoints (shortest paths)                                *)
(* ------------------------------------------------------------------ *)

let weighted_schema = sch [ "src"; "trg"; "weight" ]

(* Bellman-Ford oracle over edge lists *)
let oracle_shortest edges =
  let dist = Hashtbl.create 64 in
  List.iter
    (fun (s, t, w) ->
      match Hashtbl.find_opt dist (s, t) with
      | Some d when d <= w -> ()
      | _ -> Hashtbl.replace dist (s, t) w)
    edges;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun (s, m) d ->
        List.iter
          (fun (m', t, w) ->
            if m = m' then
              match Hashtbl.find_opt dist (s, t) with
              | Some d' when d' <= d + w -> ()
              | _ ->
                Hashtbl.replace dist (s, t) (d + w);
                changed := true)
          edges)
      (Hashtbl.copy dist)
  done;
  let r = Rel.create weighted_schema in
  Hashtbl.iter (fun (s, t) d -> ignore (Rel.add r [| s; t; d |])) dist;
  r

let test_shortest_paths () =
  let edges = [ (0, 1, 4); (1, 2, 1); (0, 2, 10); (2, 3, 2); (3, 0, 1); (1, 3, 9) ] in
  let erel = Rel.of_tuples weighted_schema (List.map (fun (s, t, w) -> [| s; t; w |]) edges) in
  let env = Eval.env [ ("E", erel) ] in
  let result = Agg.shortest_paths env ~edges:"E" in
  check_rel "all-pairs vs Bellman-Ford" (oracle_shortest edges) result;
  (* the cheap 0->2 route goes through 1: 4 + 1 = 5, not the direct 10 *)
  check_bool "relaxation found the shortcut" true (Rel.mem result [| 0; 2; 5 |]);
  let from0 = Agg.shortest_paths_from env ~edges:"E" ~source:(Value.of_int 0) in
  check_rel "single source"
    (rel [ "trg"; "weight" ] [ [ 1; 4 ]; [ 2; 5 ]; [ 3; 7 ]; [ 0; 8 ] ])
    from0

let weighted_graph_gen =
  let open QCheck2.Gen in
  let edge = triple (int_range 0 7) (int_range 0 7) (int_range 1 9) in
  let+ edges = list_size (int_range 1 20) edge in
  edges

let prop_shortest_paths_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:120 ~name:"shortest paths ≡ Bellman-Ford"
       weighted_graph_gen (fun edges ->
         let erel =
           Rel.of_tuples weighted_schema (List.map (fun (s, t, w) -> [| s; t; w |]) edges)
         in
         let env = Eval.env [ ("E", erel) ] in
         Rel.equal (oracle_shortest edges) (Agg.shortest_paths env ~edges:"E")))

(* ------------------------------------------------------------------ *)
(* Random-term properties                                              *)
(* ------------------------------------------------------------------ *)

let random_graph_gen =
  let open QCheck2.Gen in
  let edge = pair (int_range 0 9) (int_range 0 9) in
  let+ edges = list_size (int_range 1 25) edge in
  Rel.of_tuples (sch [ "src"; "trg" ]) (List.map (fun (s, t) -> [| s; t |]) edges)

let qtest name gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:100 ~name gen prop)

let prop_semi_naive_eq_naive =
  qtest "semi-naive ≡ naive on closures"
    QCheck2.Gen.(pair random_graph_gen random_graph_gen)
    (fun (e, s) ->
      let env = Eval.env [ ("E", e); ("S", s) ] in
      let t = Patterns.closure_from (Term.Rel "S") (Term.Rel "E") in
      Rel.equal (Eval.eval env t) (Eval.eval_naive env t))

let prop_closure_direction_irrelevant =
  qtest "closure ≡ closure_rev" random_graph_gen (fun e ->
      let env = Eval.env [ ("E", e) ] in
      Rel.equal
        (Eval.eval env (Patterns.closure (Term.Rel "E")))
        (Eval.eval env (Patterns.closure_rev (Term.Rel "E"))))

let prop_prop3_union_split =
  (* Proposition 3: mu(X = R1 ∪ R2 ∪ phi) = mu(X = R1 ∪ phi) ∪ mu(X = R2 ∪ phi) *)
  qtest "Prop 3: constant-part union splits"
    QCheck2.Gen.(triple random_graph_gen random_graph_gen random_graph_gen)
    (fun (e, r1, r2) ->
      let env = Eval.env [ ("E", e); ("R1", r1); ("R2", r2) ] in
      let fix seed = Patterns.closure_from seed (Term.Rel "E") in
      let merged = fix (Term.Union (Term.Rel "R1", Term.Rel "R2")) in
      let split = Term.Union (fix (Term.Rel "R1"), fix (Term.Rel "R2")) in
      Rel.equal (Eval.eval env merged) (Eval.eval env split))

let prop_stable_column_filter_push =
  qtest "stabilizer soundness: filter pushes on stable column"
    QCheck2.Gen.(pair random_graph_gen (int_range 0 9))
    (fun (e, v) ->
      let env = Eval.env [ ("E", e) ] in
      let t = Patterns.closure (Term.Rel "E") in
      match t with
      | Term.Fix (x, Term.Union (r, phi)) ->
        let tenv = Typing.env [ ("E", sch [ "src"; "trg" ]) ] in
        let stable = Stabilizer.stable_columns tenv ~var:x (Term.Union (r, phi)) in
        List.for_all
          (fun c ->
            let p = Pred.Eq_const (c, v) in
            let after = Rel.select p (Eval.eval env t) in
            let pushed = Term.Fix (x, Term.Union (Term.Select (p, r), phi)) in
            Rel.equal after (Eval.eval env pushed))
          stable
      | _ -> false)

let prop_fixpoint_is_fixed =
  qtest "mu(X = body) is a fixed point of the body" random_graph_gen (fun e ->
      let env = Eval.env [ ("E", e) ] in
      let t = Patterns.closure (Term.Rel "E") in
      match t with
      | Term.Fix (x, body) ->
        let result = Eval.eval env t in
        let reapplied = Eval.eval ~vars:[ (x, result) ] env body in
        Rel.equal result reapplied
      | _ -> false)

let prop_random_terms_semi_naive =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150 ~name:"random terms: semi-naive ≡ naive"
       Gen_terms.term_and_env_gen (fun (t, tables) ->
         let env = Eval.env tables in
         Rel.equal (Eval.eval env t) (Eval.eval_naive env t)))

let prop_random_terms_typed =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150 ~name:"random terms are well-typed path relations"
       Gen_terms.term_and_env_gen (fun (t, tables) ->
         let tenv = Typing.env (List.map (fun (n, r) -> (n, Rel.schema r)) tables) in
         Schema.equal_names (Typing.infer tenv t) (sch [ "src"; "trg" ])
         && Result.is_ok (Fcond.check_term t)))

(* ---- Normal: canonical forms for cache keys ---- *)

let check_same_key msg a b =
  Alcotest.(check string) msg (Normal.key a) (Normal.key b)

let check_diff_key msg a b =
  check_bool msg false (Normal.key a = Normal.key b)

(* ---- Deriv: differential summands for incremental maintenance ---- *)

(* the semantic contract: t(old) ∪ ⋃∂ = t(new) and ⋃∂ ⊆ t(new), with
   summands evaluated over the NEW catalog *)
let check_deriv_law msg term ~d_e =
  let old_e = Rel.diff fig2_edges d_e in
  let env_new = Eval.env [ ("E", fig2_edges); ("S", fig2_start) ] in
  let env_old = Eval.env [ ("E", old_e); ("S", fig2_start) ] in
  let t_old = Eval.eval env_old term and t_new = Eval.eval env_new term in
  let sums = Deriv.delta ~changed:[ ("E", d_e) ] term in
  let du =
    List.fold_left (fun acc s -> Rel.union acc (Eval.eval env_new s)) t_old sums
  in
  check_rel (msg ^ ": complete") t_new du;
  List.iter
    (fun s ->
      check_bool (msg ^ ": sound")
        true
        (Rel.is_empty (Rel.diff (Eval.eval env_new s) t_new)))
    sums

let test_deriv_semantics () =
  let d_e = rel [ "src"; "trg" ] [ [ 3; 6 ]; [ 5; 6 ] ] in
  let two_path =
    Term.Antiproject
      ( [ "c" ],
        Term.Join (Term.rename1 "trg" "c" (Term.Rel "E"), Term.rename1 "src" "c" (Term.Rel "E"))
      )
  in
  (* E occurs twice in the join: one summand per occurrence *)
  check_int "join: one summand per occurrence" 2
    (List.length (Deriv.delta ~changed:[ ("E", d_e) ] two_path));
  check_deriv_law "join" two_path ~d_e;
  check_deriv_law "union" (Term.Union (Term.Rel "S", Term.Rel "E")) ~d_e;
  check_deriv_law "select" (Term.Select (Pred.Gt_const ("src", 2), Term.Rel "E")) ~d_e;
  (* changed relation on the antijoin LEFT is fine *)
  check_deriv_law "antijoin left" (Term.Antijoin (Term.Rel "E", Term.Rel "S")) ~d_e;
  (* no occurrence of the changed relation: nothing can appear *)
  check_int "unchanged term has no summands" 0
    (List.length (Deriv.delta ~changed:[ ("Z", d_e) ] two_path));
  (* recursive variables differentiate to nothing *)
  check_int "Var differentiates to nothing" 0
    (List.length (Deriv.delta ~changed:[ ("Z", d_e) ] (Term.Var "X")))

let test_deriv_unsupported () =
  let d_e = rel [ "src"; "trg" ] [ [ 3; 6 ] ] in
  (* changed relation under the antijoin right side: insertions retract *)
  let neg = Term.Antijoin (Term.Rel "S", Term.Rel "E") in
  (match Deriv.supported ~changed:[ "E" ] neg with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "antijoin-right occurrence accepted");
  (match Deriv.delta ~changed:[ ("E", d_e) ] neg with
  | _ -> Alcotest.fail "delta did not raise"
  | exception Deriv.Unsupported _ -> ());
  (* changed relation inside a nested Fix body *)
  (match Deriv.supported ~changed:[ "E" ] example2_term with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "nested-fix occurrence accepted");
  (* while the same shapes over unchanged relations are supported *)
  (match Deriv.supported ~changed:[ "S" ] neg with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "antijoin-left rejected: %s" msg)

let test_normal_alpha () =
  (* alpha-renamed recursion variables share a key *)
  let body x = Term.Union (Term.Rel "E", Term.Join (Term.Var x, Term.Rel "E")) in
  check_same_key "alpha rename" (Term.Fix ("X", body "X")) (Term.Fix ("Y", body "Y"));
  (* nested binders, both renamed *)
  let nested a b =
    Term.Fix (a, Term.Union (Term.Fix (b, Term.Union (Term.Rel "E", Term.Var b)), Term.Var a))
  in
  check_same_key "nested alpha" (nested "X" "Y") (nested "P" "Q");
  (* distinct variables must stay distinct: a body that joins the inner
     variable is not the one that joins the outer *)
  let outer_inner inner_uses =
    Term.Fix
      ( "X",
        Term.Union
          (Term.Fix ("Y", Term.Union (Term.Rel "E", Term.Join (Term.Var inner_uses, Term.Rel "E"))),
           Term.Var "X") )
  in
  check_diff_key "inner vs outer var" (outer_inner "Y") (outer_inner "X")

let test_normal_commutative () =
  let a = Term.Rel "A" and b = Term.Rel "B" and c = Term.Rel "C" in
  check_same_key "union swap" (Term.Union (a, b)) (Term.Union (b, a));
  check_same_key "union chain reassoc"
    (Term.Union (a, Term.Union (b, c)))
    (Term.Union (Term.Union (c, b), a));
  check_same_key "join swap" (Term.Join (a, b)) (Term.Join (b, a));
  (* antijoin is not commutative; select predicates matter *)
  check_diff_key "antijoin not swapped" (Term.Antijoin (a, b)) (Term.Antijoin (b, a));
  check_diff_key "different operand" (Term.Union (a, b)) (Term.Union (a, c));
  check_diff_key "different predicate"
    (Term.Select (Pred.Eq_const ("src", 1), a))
    (Term.Select (Pred.Eq_const ("src", 2), a))

let test_normal_working_cols () =
  (* two independent translations of the same query allocate different
     fresh working columns and recursion variables — same key *)
  let t1 = Patterns.closure (Term.Rel "E") in
  let t2 = Patterns.closure (Term.Rel "E") in
  check_bool "fresh names differ" false (Term.equal t1 t2);
  check_same_key "repeated translation" t1 t2;
  let r1 = Patterns.reach 1 in
  let r2 = Patterns.reach 1 in
  check_same_key "repeated reach" r1 r2;
  check_diff_key "different source" (Patterns.reach 1) (Patterns.reach 2)

let test_normal_idempotent () =
  let terms =
    [
      Patterns.closure (Term.Rel "E");
      Patterns.reach 1;
      Patterns.same_generation ();
      Term.Union (Term.Rel "B", Term.Union (Term.Rel "A", Term.Rel "C"));
    ]
  in
  List.iter
    (fun t ->
      let n = Normal.normalize t in
      check_bool "normalize idempotent" true (Term.equal n (Normal.normalize n));
      Alcotest.(check string) "key stable" (Normal.key t) (Normal.key n))
    terms

let prop_normalize_preserves_semantics =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150 ~name:"normalize preserves denotation"
       Gen_terms.term_and_env_gen (fun (t, tables) ->
         let env = Eval.env tables in
         Rel.equal (Eval.eval env t) (Eval.eval env (Normal.normalize t))))

let () =
  Alcotest.run "mura"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "example 1 (2-paths)" `Quick test_example1;
          Alcotest.test_case "example 2 semi-naive" `Quick test_example2_semi_naive;
          Alcotest.test_case "example 2 naive" `Quick test_example2_naive;
        ] );
      ( "typing",
        [
          Alcotest.test_case "inference" `Quick test_typing;
          Alcotest.test_case "free vars / subst" `Quick test_free_vars_subst;
        ] );
      ( "fcond",
        [
          Alcotest.test_case "classification" `Quick test_fcond_classification;
          Alcotest.test_case "decompose" `Quick test_decompose;
        ] );
      ( "stabilizer",
        [
          Alcotest.test_case "stable columns" `Quick test_stabilizer;
          Alcotest.test_case "filter-push identity" `Quick test_stable_filter_push_identity;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "closure" `Quick test_patterns_closure;
          Alcotest.test_case "reach" `Quick test_patterns_reach;
          Alcotest.test_case "same generation" `Quick test_patterns_same_generation;
          Alcotest.test_case "anbn" `Quick test_patterns_anbn;
        ] );
      ( "aggregate fixpoints",
        [
          Alcotest.test_case "shortest paths" `Quick test_shortest_paths;
          prop_shortest_paths_oracle;
        ] );
      ( "deriv",
        [
          Alcotest.test_case "deriv semantics" `Quick test_deriv_semantics;
          Alcotest.test_case "deriv unsupported" `Quick test_deriv_unsupported;
        ] );
      ( "normal",
        [
          Alcotest.test_case "alpha renaming" `Quick test_normal_alpha;
          Alcotest.test_case "commutative reordering" `Quick test_normal_commutative;
          Alcotest.test_case "working columns" `Quick test_normal_working_cols;
          Alcotest.test_case "idempotent" `Quick test_normal_idempotent;
          prop_normalize_preserves_semantics;
        ] );
      ( "properties",
        [
          prop_semi_naive_eq_naive;
          prop_closure_direction_irrelevant;
          prop_prop3_union_split;
          prop_stable_column_filter_push;
          prop_fixpoint_is_fixed;
          prop_random_terms_semi_naive;
          prop_random_terms_typed;
        ] );
    ]
