(* Tests for the physical plan generator: all three fixpoint plans agree
   with the centralized evaluator, plan selection follows the stabilizer,
   and the communication profiles match the paper's claims (P_plw does a
   constant number of shuffles; P_gld shuffles every iteration). *)

open Relation
module Term = Mura.Term
module Exec = Physical.Exec
module Cluster = Distsim.Cluster
module Metrics = Distsim.Metrics

let sch = Schema.of_list
let rel schema rows = Rel.of_list (sch schema) rows
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_rel msg expected actual =
  if not (Rel.equal expected actual) then
    Alcotest.failf "%s:@.expected %a@.got %a" msg Rel.pp_full expected Rel.pp_full actual

(* a graph with two long chains and a cycle, to force several iterations *)
let edges =
  rel [ "src"; "trg" ]
    [
      [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 4; 5 ]; [ 5; 6 ];
      [ 10; 11 ]; [ 11; 12 ]; [ 12; 10 ];
      [ 3; 10 ]; [ 6; 1 ];
    ]

let closure_term = Mura.Patterns.closure (Term.Rel "E")
let expected_closure = Mura.Eval.eval (Mura.Eval.env [ ("E", edges) ]) closure_term

let session ?force_plan ?(workers = 4) () =
  let cluster = Cluster.make ~workers () in
  let config = { (Exec.default_config cluster) with force_plan } in
  Exec.session config [ ("E", edges) ]

let test_plan_agreement plan () =
  let ctx = match plan with None -> session () | Some p -> session ~force_plan:p () in
  check_rel "plan agreement" expected_closure (Exec.run ctx closure_term)

let test_auto_selection_stable () =
  let ctx = session () in
  ignore (Exec.run ctx closure_term);
  match (Exec.report ctx).fixpoints with
  | [ fr ] ->
    check_bool "P_plw selected" true (fr.plan = Exec.P_plw_s);
    Alcotest.(check (list string)) "stable column" [ "src" ] fr.stable;
    Alcotest.(check (list string)) "partitioned by it" [ "src" ] fr.partitioned_by;
    check_int "result size" (Rel.cardinal expected_closure) fr.result_size
  | l -> Alcotest.failf "expected one fixpoint report, got %d" (List.length l)

let test_auto_selection_unstable () =
  (* same-generation: neither column is stable -> P_gld *)
  let ctx = session () in
  ignore (Exec.run ctx (Mura.Patterns.same_generation ()));
  match (Exec.report ctx).fixpoints with
  | [ fr ] ->
    check_bool "P_gld selected" true (fr.plan = Exec.P_gld);
    Alcotest.(check (list string)) "no stable column" [] fr.stable
  | l -> Alcotest.failf "expected one fixpoint report, got %d" (List.length l)

let shuffles_of_run plan term =
  let ctx = session ~force_plan:plan () in
  let plan = Some plan in
  ignore plan;
  (* preload the table so the initial distribution is not counted *)
  ignore (Exec.exec_dds ctx (Term.Rel "E"));
  let m = Cluster.metrics (Exec.config_of ctx).Exec.cluster in
  let before = m.Metrics.shuffles in
  let result = Exec.run ctx term in
  check_rel "result while counting" expected_closure result;
  let iterations = match (Exec.report ctx).fixpoints with fr :: _ -> fr.iterations | [] -> 0 in
  (m.Metrics.shuffles - before, iterations)

let test_communication_profile () =
  let gld_shuffles, gld_iters = shuffles_of_run Exec.P_gld closure_term in
  let plw_shuffles, plw_iters = shuffles_of_run Exec.P_plw_s closure_term in
  check_bool "several iterations" true (gld_iters > 3 && plw_iters > 3);
  (* P_gld: at least one shuffle per iteration *)
  check_bool
    (Printf.sprintf "gld shuffles (%d) >= iterations (%d)" gld_shuffles gld_iters)
    true (gld_shuffles >= gld_iters);
  (* P_plw^s: constant shuffle count — the stable repartition plus the
     final collect, regardless of iteration count *)
  check_bool (Printf.sprintf "plw shuffles (%d) <= 3" plw_shuffles) true (plw_shuffles <= 3);
  check_bool "plw < gld" true (plw_shuffles < gld_shuffles)

let test_plw_disjoint_partitions () =
  (* with the stable repartitioning, local fixpoints are disjoint: total
     = sum of partition sizes with no duplicates (Sec. IV-A2) *)
  let ctx = session ~force_plan:Exec.P_plw_s () in
  let d = Exec.exec_dds ctx closure_term in
  let sum = Array.fold_left ( + ) 0 (Distsim.Dds.partition_sizes d) in
  check_int "no cross-worker duplicates" (Rel.cardinal expected_closure) sum

let test_filtered_closure_all_plans () =
  let term = Term.Select (Pred.Eq_const ("src", 1), closure_term) in
  let expected = Mura.Eval.eval (Mura.Eval.env [ ("E", edges) ]) term in
  List.iter
    (fun plan ->
      let ctx = session ~force_plan:plan () in
      check_rel (Exec.plan_name plan) expected (Exec.run ctx term))
    [ Exec.P_gld; Exec.P_plw_s; Exec.P_plw_pg ]

let test_nonrecursive_operators () =
  let ctx = session () in
  let t =
    Term.Union
      ( Term.Select (Pred.Gt_const ("src", 3), Term.Rel "E"),
        Term.Rename ([ ("src", "trg"); ("trg", "src") ], Term.Rel "E") )
  in
  let expected = Mura.Eval.eval (Mura.Eval.env [ ("E", edges) ]) t in
  check_rel "union of filter and rename" expected (Exec.run ctx t)

let test_explain () =
  let ctx = session () in
  let term = Term.Select (Pred.Eq_const ("src", 1), closure_term) in
  let text = Exec.explain ctx term in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "mentions fixpoint plan" true (contains "plan=P_plw^s");
  check_bool "mentions stable column" true (contains "stable=[src]");
  check_bool "mentions repartition" true (contains "repartition constant part by [src]");
  check_bool "mentions scan" true (contains "TableScan E");
  (* explain does not execute: no fixpoint report recorded *)
  check_int "no execution" 0 (List.length (Exec.report ctx).fixpoints)

let test_resource_limit () =
  let cluster = Cluster.make ~workers:2 () in
  let config = { (Exec.default_config cluster) with max_tuples = 10 } in
  let ctx = Exec.session config [ ("E", edges) ] in
  match Exec.run ctx closure_term with
  | (_ : Rel.t) -> Alcotest.fail "expected Resource_limit"
  | exception Exec.Resource_limit _ -> ()

let test_same_generation_plans () =
  let parent = rel [ "src"; "trg" ] [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 3 ]; [ 2; 4 ]; [ 4; 5 ]; [ 3; 6 ] ] in
  let term = Mura.Patterns.same_generation () in
  let expected = Mura.Eval.eval (Mura.Eval.env [ ("E", parent) ]) term in
  List.iter
    (fun plan ->
      let cluster = Cluster.make ~workers:3 () in
      let ctx = Exec.session { (Exec.default_config cluster) with force_plan = plan } [ ("E", parent) ] in
      check_rel "same generation" expected (Exec.run ctx term))
    [ None; Some Exec.P_gld; Some Exec.P_plw_s; Some Exec.P_plw_pg ]

let random_graph_gen =
  let open QCheck2.Gen in
  let edge = pair (int_range 0 12) (int_range 0 12) in
  let+ edges = list_size (int_range 1 40) edge in
  Rel.of_tuples (sch [ "src"; "trg" ]) (List.map (fun (s, t) -> [| s; t |]) edges)

let qtest name gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:60 ~name gen prop)

let prop_all_plans_agree =
  qtest "all plans ≡ centralized on random closures"
    QCheck2.Gen.(triple random_graph_gen random_graph_gen (int_range 1 5))
    (fun (e, s, workers) ->
      let term = Mura.Patterns.closure_from (Term.Rel "S") (Term.Rel "E") in
      let expected = Mura.Eval.eval (Mura.Eval.env [ ("E", e); ("S", s) ]) term in
      List.for_all
        (fun plan ->
          let cluster = Cluster.make ~workers () in
          let ctx =
            Exec.session
              { (Exec.default_config cluster) with force_plan = plan }
              [ ("E", e); ("S", s) ]
          in
          Rel.equal expected (Exec.run ctx term))
        [ None; Some Exec.P_gld; Some Exec.P_plw_s; Some Exec.P_plw_pg ])

let prop_reach_all_plans =
  qtest "reach: all plans agree" random_graph_gen (fun e ->
      let term = Mura.Patterns.reach (Value.of_int 0) in
      let expected = Mura.Eval.eval (Mura.Eval.env [ ("E", e) ]) term in
      List.for_all
        (fun plan ->
          let cluster = Cluster.make ~workers:3 () in
          let ctx =
            Exec.session { (Exec.default_config cluster) with force_plan = plan } [ ("E", e) ]
          in
          Rel.equal expected (Exec.run ctx term))
        [ None; Some Exec.P_gld; Some Exec.P_plw_s; Some Exec.P_plw_pg ])

let test_distributed_shortest_paths () =
  let rng_edges =
    List.init 60 (fun i -> [| i mod 17; (i * 7) mod 17; 1 + (i mod 5) |])
  in
  let rel = Rel.of_tuples (sch [ "src"; "trg"; "weight" ]) rng_edges in
  let env = Mura.Eval.env [ ("E", rel) ] in
  let expected = Mura.Agg.shortest_paths env ~edges:"E" in
  let cluster = Cluster.make ~workers:4 () in
  let m = Cluster.metrics cluster in
  let result = Physical.Agg_exec.shortest_paths cluster rel in
  check_rel "distributed ≡ centralized shortest paths" expected result;
  (* P_plw-style: one broadcast, constant shuffles *)
  check_bool "one broadcast" true (m.Metrics.broadcasts = 1);
  check_bool "constant shuffles" true (m.Metrics.shuffles <= 2)

let prop_random_terms_all_plans =
  qtest "random terms: every plan ≡ centralized"
    QCheck2.Gen.(pair Gen_terms.term_and_env_gen (int_range 1 4))
    (fun ((t, tables), workers) ->
      let expected = Mura.Eval.eval (Mura.Eval.env tables) t in
      List.for_all
        (fun plan ->
          let cluster = Cluster.make ~workers () in
          let ctx =
            Exec.session { (Exec.default_config cluster) with force_plan = plan } tables
          in
          Rel.equal expected (Exec.run ctx t))
        [ None; Some Exec.P_gld; Some Exec.P_plw_s; Some Exec.P_plw_pg ])

(* --- EXPLAIN ANALYZE ------------------------------------------------- *)

let analyze_session ?force_plan () =
  let cluster = Cluster.make ~workers:4 () in
  let config = { (Exec.default_config cluster) with force_plan; collect_actuals = true } in
  Exec.session config [ ("E", edges) ]

let counters (m : Metrics.t) =
  (m.shuffles, m.shuffled_records, m.shuffled_bytes, m.broadcasts, m.broadcast_records,
   m.supersteps)

let test_analyze_no_observable_effect () =
  List.iter
    (fun plan ->
      let plain = session ~force_plan:plan () in
      let analyzed = analyze_session ~force_plan:plan () in
      let r_plain = Exec.run plain closure_term in
      let r_analyzed = Exec.run analyzed closure_term in
      check_rel "same result" r_plain r_analyzed;
      check_bool "same communication counters" true
        (counters (Exec.metrics plain) = counters (Exec.metrics analyzed)))
    [ Exec.P_gld; Exec.P_plw_s; Exec.P_plw_pg ]

let test_analyze_root_actual () =
  List.iter
    (fun plan ->
      let ctx = analyze_session ~force_plan:plan () in
      let result = Exec.run ctx closure_term in
      let tree = Exec.Analyze.tree ctx closure_term in
      check_int "root actual rows = |result|" (Rel.cardinal result) tree.Exec.Analyze.rows;
      check_bool "root timed" true (tree.Exec.Analyze.ns > 0.);
      check_int "root evaluated once" 1 tree.Exec.Analyze.calls)
    [ Exec.P_gld; Exec.P_plw_s; Exec.P_plw_pg ]

let test_analyze_deltas () =
  let ctx = analyze_session ~force_plan:Exec.P_plw_s () in
  ignore (Exec.run ctx closure_term);
  match (Exec.report ctx).fixpoints with
  | [ fr ] ->
    check_int "one delta per iteration" fr.iterations (List.length fr.deltas);
    check_bool "terminating empty delta" true (List.nth fr.deltas (fr.iterations - 1) = 0);
    check_bool "fix path recorded" true (fr.fix_path <> "")
  | l -> Alcotest.failf "expected one fixpoint report, got %d" (List.length l)

let test_analyze_plw_pg_locals () =
  let ctx = analyze_session ~force_plan:Exec.P_plw_pg () in
  let result = Exec.run ctx closure_term in
  let tree = Exec.Analyze.tree ctx closure_term in
  let rec find_fix (n : Exec.Analyze.node) =
    if n.plan <> None then Some n else List.find_map find_fix n.children
  in
  match find_fix tree with
  | None -> Alcotest.fail "no fixpoint node in analyze tree"
  | Some fix ->
    check_bool "local plan actuals present" true (fix.Exec.Analyze.local <> []);
    let root_local =
      List.find (fun (l : Exec.Analyze.local_op) -> l.l_path = "0") fix.Exec.Analyze.local
    in
    (* the local fixpoints are disjoint: their result sizes sum to the
       global result *)
    check_int "local fix rows sum to result" (Rel.cardinal result) root_local.l_rows_total;
    check_bool "semi-naive rounds seen" true (root_local.l_rounds > 0);
    check_int "all workers reported" 4 root_local.l_workers

let test_analyze_render () =
  let ctx = analyze_session () in
  ignore (Exec.run ctx closure_term);
  let tree = Exec.Analyze.tree ctx closure_term in
  let rendered =
    Exec.Analyze.render ~annot:(fun path -> if path = "0" then "est=42 err=2.00" else "") tree
  in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "has actual rows" true (contains rendered "rows=");
  check_bool "annot injected" true (contains rendered "est=42 err=2.00");
  check_bool "has iteration counts" true (contains rendered "iters=");
  check_bool "has delta curve" true (contains rendered "deltas=[")

(* --- fused delta / iteration-shuffle dedup --------------------------- *)

let contains_sub text needle =
  let n = String.length needle and h = String.length text in
  let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
  go 0

(* run a term with explicit delta-maintenance knobs and return everything
   that must be invariant under them *)
let knob_run ?force_plan ?(workers = 4) ~fused ~dedup term tables =
  let cluster = Cluster.make ~workers () in
  let config =
    { (Exec.default_config cluster) with
      force_plan;
      use_fused_delta = fused;
      use_shuffle_dedup = dedup;
    }
  in
  let ctx = Exec.session config tables in
  let result = Exec.run ctx term in
  let sigs =
    List.map
      (fun (fr : Exec.fix_report) -> (fr.var, fr.plan, fr.iterations, fr.deltas))
      (Exec.report ctx).fixpoints
  in
  (result, sigs, counters (Exec.metrics ctx))

(* The fused accumulator and the map-side seen filter are pure
   optimisations: results, iteration counts and per-iteration delta
   curves are bit-identical to the unfused baseline on every plan and
   worker count; communication counters are identical whenever the seen
   filter is off (the fused kernel is a narrow stage and moves nothing). *)
let test_fused_parity () =
  List.iter
    (fun (name, term) ->
      List.iter
        (fun plan ->
          List.iter
            (fun workers ->
              let base_r, base_s, base_c =
                knob_run ~force_plan:plan ~workers ~fused:false ~dedup:false term [ ("E", edges) ]
              in
              List.iter
                (fun (fused, dedup) ->
                  let label =
                    Printf.sprintf "%s %s w=%d fused=%b dedup=%b" name (Exec.plan_name plan)
                      workers fused dedup
                  in
                  let r, s, c =
                    knob_run ~force_plan:plan ~workers ~fused ~dedup term [ ("E", edges) ]
                  in
                  check_rel (label ^ ": results") base_r r;
                  check_bool (label ^ ": iterations and deltas") true (base_s = s);
                  if not dedup then
                    check_bool (label ^ ": communication counters") true (base_c = c))
                [ (true, false); (false, true); (true, true) ])
            [ 1; 4 ])
        [ Exec.P_gld; Exec.P_plw_s ])
    [ ("closure", closure_term); ("same_gen", Mura.Patterns.same_generation ()) ]

(* a fixpoint whose very first iteration derives nothing new *)
let test_fused_empty_first_delta () =
  let self = rel [ "src"; "trg" ] [ [ 1; 1 ]; [ 2; 2 ] ] in
  List.iter
    (fun plan ->
      List.iter
        (fun (fused, dedup) ->
          let r, sigs, _ =
            knob_run ~force_plan:plan ~fused ~dedup closure_term [ ("E", self) ]
          in
          check_rel "fixpoint of self-loops = E" self r;
          match sigs with
          | [ (_, _, iters, deltas) ] ->
            check_int "terminates in one iteration" 1 iters;
            check_bool "first delta empty" true (deltas = [ 0 ])
          | _ -> Alcotest.fail "expected exactly one fixpoint report")
        [ (false, false); (true, false); (true, true) ])
    [ Exec.P_gld; Exec.P_plw_s ]

(* on P_gld the seen filter must strictly reduce what the iteration
   shuffles move: transitive closure re-derives pairs every round *)
let test_dedup_reduces_gld_shuffle () =
  let run ~dedup =
    let cluster = Cluster.make ~workers:4 () in
    let config =
      { (Exec.default_config cluster) with
        force_plan = Some Exec.P_gld;
        use_shuffle_dedup = dedup;
      }
    in
    let ctx = Exec.session config [ ("E", edges) ] in
    check_rel "closure while counting" expected_closure (Exec.run ctx closure_term);
    let m = Exec.metrics ctx in
    (m.Metrics.shuffled_records, m.Metrics.dedup_dropped_records)
  in
  let off_records, off_dropped = run ~dedup:false in
  let on_records, on_dropped = run ~dedup:true in
  check_int "no drops when off" 0 off_dropped;
  check_bool "re-derivations dropped" true (on_dropped > 0);
  check_bool
    (Printf.sprintf "fewer shuffled records (%d < %d)" on_records off_records)
    true
    (on_records < off_records)

let test_explain_delta_mode () =
  let ctx = session () in
  check_bool "fused mode shown" true
    (contains_sub (Exec.explain ctx closure_term)
       "Fixpoint delta: fused in-place diff+union, iteration-shuffle dedup on");
  let cluster = Cluster.make ~workers:2 () in
  let config =
    { (Exec.default_config cluster) with use_fused_delta = false; use_shuffle_dedup = false }
  in
  let ctx2 = Exec.session config [ ("E", edges) ] in
  check_bool "baseline mode shown" true
    (contains_sub (Exec.explain ctx2 closure_term)
       "Fixpoint delta: unfused diff/union (baseline), iteration-shuffle dedup off")

(* --- compiled columnar execution ------------------------------------- *)

(* deterministic Erdős–Rényi-ish multigraph (LCG, no global Random state) *)
let er_graph ~n ~m ~seed =
  let state = ref seed in
  let next bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  rel [ "src"; "trg" ] (List.init m (fun _ -> [ next n; next n ]))

let counters_full (m : Metrics.t) =
  (counters m, m.Metrics.dedup_dropped_records)

(* run with the compiled-execution knob explicit and return everything the
   compiled core promises to keep bit-identical to the interpreter *)
let compiled_run ~force_plan ~workers ~compiled ~dedup term tables =
  let cluster = Cluster.make ~workers () in
  let config =
    { (Exec.default_config cluster) with
      force_plan = Some force_plan;
      use_compiled_exec = compiled;
      use_shuffle_dedup = dedup;
    }
  in
  let ctx = Exec.session config tables in
  let result = Exec.run ctx term in
  let sigs =
    List.map
      (fun (fr : Exec.fix_report) -> (fr.var, fr.plan, fr.iterations, fr.deltas))
      (Exec.report ctx).fixpoints
  in
  (result, sigs, counters_full (Exec.metrics ctx))

(* The compiled pipelines are a pure execution-strategy change: on every
   plan, worker count and graph shape the result relation, iteration
   count, per-iteration delta curve and all communication counters
   (including the seen-filter drops with dedup on) match the interpreted
   oracle exactly. *)
let test_compiled_parity () =
  let graphs =
    [
      ("path", rel [ "src"; "trg" ] (List.init 60 (fun i -> [ i; i + 1 ])));
      ("sparse_er", er_graph ~n:40 ~m:60 ~seed:7);
      ("dense_er", er_graph ~n:18 ~m:90 ~seed:23);
    ]
  in
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun plan ->
          List.iter
            (fun workers ->
              List.iter
                (fun dedup ->
                  let label =
                    Printf.sprintf "%s %s w=%d dedup=%b" gname (Exec.plan_name plan) workers dedup
                  in
                  let br, bs, bc =
                    compiled_run ~force_plan:plan ~workers ~compiled:false ~dedup closure_term
                      [ ("E", g) ]
                  in
                  let cr, cs, cc =
                    compiled_run ~force_plan:plan ~workers ~compiled:true ~dedup closure_term
                      [ ("E", g) ]
                  in
                  check_rel (label ^ ": results") br cr;
                  check_bool (label ^ ": iterations and delta curves") true (bs = cs);
                  check_bool (label ^ ": communication counters") true (bc = cc))
                [ false; true ])
            [ 1; 4 ])
        [ Exec.P_gld; Exec.P_plw_s ])
    graphs

(* engagement: the one-time compiler accepts the TC step shape and
   declines shapes outside its contract (the caller then falls back) *)
let test_compiled_engagement () =
  let cluster = Cluster.make ~workers:2 () in
  let edges_schema = sch [ "src"; "trg" ] in
  let tenv = Mura.Typing.env [ ("E", edges_schema) ] in
  let eval t = Mura.Eval.eval (Mura.Eval.env [ ("E", edges) ]) t in
  let compile recs =
    Physical.Pipeline.compile ~cluster ~var:"X" ~join_mode:`Broadcast ~x_schema:edges_schema
      ~typing:(Mura.Typing.infer ~vars:[ ("X", edges_schema) ] tenv)
      ~exec_const:(fun ~path:_ t -> Distsim.Dds.of_rel cluster (eval t))
      ~eval_const:(fun ~path:_ t -> eval t)
      ~branch_path:(fun i -> "0." ^ string_of_int i)
      recs
  in
  let tc_step =
    Term.Antiproject
      ( [ "_m" ],
        Term.Join
          (Term.Rename ([ ("trg", "_m") ], Term.Var "X"),
           Term.Rename ([ ("src", "_m") ], Term.Rel "E")) )
  in
  check_bool "TC step compiles" true (compile [ tc_step ] <> None);
  check_bool "nested union falls back" true
    (compile [ Term.Union (Term.Var "X", Term.Rel "E") ] = None);
  check_bool "nested fixpoint falls back" true
    (compile [ Mura.Patterns.closure (Term.Var "X") ] = None)

let test_explain_exec_mode () =
  let ctx = session () in
  check_bool "compiled mode shown" true
    (contains_sub (Exec.explain ctx closure_term) "Execution: compiled columnar");
  let cluster = Cluster.make ~workers:2 () in
  let config = { (Exec.default_config cluster) with use_compiled_exec = false } in
  let ctx2 = Exec.session config [ ("E", edges) ] in
  check_bool "interpreted mode shown" true
    (contains_sub (Exec.explain ctx2 closure_term) "Execution: interpreted operator-at-a-time")

(* --- compiled shell (whole-plan columnar execution) ------------------- *)

module Sh = Physical.Pipeline.Shell

(* a shell-heavy plan: every non-fixpoint operator engages around the
   closure — select, rename, join, antiproject, project, union, antijoin *)
let shell_term =
  let two_hop =
    Term.Antiproject
      ( [ "_m" ],
        Term.Join
          ( Term.Rename ([ ("trg", "_m") ], Term.Rel "E"),
            Term.Rename ([ ("src", "_m") ], Term.Rel "E") ) )
  in
  Term.Antijoin
    ( Term.Union
        ( Term.Select (Pred.Gt_const ("src", 2), two_hop),
          Term.Project ([ "src"; "trg" ], closure_term) ),
      Term.Select (Pred.Eq_const ("src", 1), Term.Rel "E") )

(* joins with no shared column: broadcast -> compiled cartesian probe;
   shuffle -> the one dynamic per-subtree fallback *)
let cartesian_term =
  Term.Join
    ( Term.Rename ([ ("src", "a"); ("trg", "b") ], Term.Rel "E"),
      Term.Rename ([ ("src", "c"); ("trg", "d") ], Term.Rel "E") )

let shell_run ?(threshold = -1) ~workers ~compiled term tables =
  let cluster = Cluster.make ~workers () in
  let base = Exec.default_config cluster in
  let config =
    { base with
      use_compiled_exec = compiled;
      broadcast_threshold =
        (if threshold < 0 then base.Exec.broadcast_threshold else threshold);
    }
  in
  let ctx = Exec.session config tables in
  (Exec.run ctx term, counters_full (Exec.metrics ctx))

(* The compiled shell is a pure execution-strategy change: results and
   every communication counter match the interpreter on all three
   fixpoint plans (including P_plw^pg's compiled local fixpoints), every
   worker count and dedup setting. *)
let test_shell_parity () =
  let graphs = [ ("edges", edges); ("sparse_er", er_graph ~n:40 ~m:60 ~seed:7) ] in
  List.iter
    (fun (gname, g) ->
      let central = Mura.Eval.eval (Mura.Eval.env [ ("E", g) ]) shell_term in
      List.iter
        (fun plan ->
          List.iter
            (fun workers ->
              List.iter
                (fun dedup ->
                  let label =
                    Printf.sprintf "%s %s w=%d dedup=%b" gname (Exec.plan_name plan) workers
                      dedup
                  in
                  let br, bs, bc =
                    compiled_run ~force_plan:plan ~workers ~compiled:false ~dedup shell_term
                      [ ("E", g) ]
                  in
                  let cr, cs, cc =
                    compiled_run ~force_plan:plan ~workers ~compiled:true ~dedup shell_term
                      [ ("E", g) ]
                  in
                  check_rel (label ^ ": central agreement") central cr;
                  check_rel (label ^ ": results") br cr;
                  check_bool (label ^ ": iterations and delta curves") true (bs = cs);
                  check_bool (label ^ ": communication counters") true (bc = cc))
                [ false; true ])
            [ 1; 4 ])
        [ Exec.P_gld; Exec.P_plw_s; Exec.P_plw_pg ])
    graphs

(* broadcast_threshold = 0 forces every shell join/antijoin onto the
   shuffle paths (including the cartesian-shuffle dynamic fallback) *)
let test_shell_shuffle_parity () =
  List.iter
    (fun (tname, term) ->
      let central = Mura.Eval.eval (Mura.Eval.env [ ("E", edges) ]) term in
      List.iter
        (fun workers ->
          let label = Printf.sprintf "%s w=%d threshold=0" tname workers in
          let br, bc = shell_run ~threshold:0 ~workers ~compiled:false term [ ("E", edges) ] in
          let cr, cc = shell_run ~threshold:0 ~workers ~compiled:true term [ ("E", edges) ] in
          check_rel (label ^ ": central agreement") central cr;
          check_rel (label ^ ": results") br cr;
          check_bool (label ^ ": communication counters") true (bc = cc))
        [ 1; 4 ])
    [ ("shell_term", shell_term); ("cartesian", cartesian_term) ]

(* per-subtree fallback: a zero-arity Project interprets itself (and
   makes its parent Join interpret), the siblings stay compiled, results
   match, and each fallback is counted once per site/reason *)
let test_shell_subtree_fallback () =
  let bad = Term.Join (Term.Rel "E", Term.Project ([], Term.Rel "E")) in
  let expected = Mura.Eval.eval (Mura.Eval.env [ ("E", edges) ]) bad in
  let reg = Telemetry.make () in
  Telemetry.install reg;
  Fun.protect ~finally:Telemetry.uninstall @@ fun () ->
  let ctx = session () in
  let r = Exec.run ctx bad in
  check_rel "zero-arity subtree result" expected r;
  let snap = Telemetry.snapshot reg in
  let v labels = Telemetry.Snapshot.value ~labels snap "pipeline_fallback_total" in
  check_bool "join fell back (zero_arity_child)" true
    (v [ ("reason", "zero_arity_child"); ("site", "shell") ] = Some 1.);
  check_bool "project fell back (zero_arity)" true
    (v [ ("reason", "zero_arity"); ("site", "shell") ] = Some 1.)

(* anti-double-metering: supportability is decided from typing alone, so
   a shell whose root is rejected late must not evaluate or re-meter the
   constant under it a second time — the counters match the interpreter
   exactly, where each Cst is distributed once *)
let test_shell_no_double_const_eval () =
  let big = er_graph ~n:50 ~m:200 ~seed:3 in
  let t = Term.Join (Term.Cst big, Term.Project ([], Term.Rel "E")) in
  let br, bc = shell_run ~workers:4 ~compiled:false t [ ("E", edges) ] in
  let cr, cc = shell_run ~workers:4 ~compiled:true t [ ("E", edges) ] in
  check_rel "late-rejected shell result" br cr;
  check_bool "constants metered exactly once" true (bc = cc)

let test_shell_explain () =
  let ctx = session () in
  let t = Term.Select (Pred.Gt_const ("src", 2), Term.Project ([ "src" ], closure_term)) in
  let text = Exec.explain ctx t in
  check_bool "compiled nodes annotated" true (contains_sub text "[compiled]");
  check_bool "branch verdicts listed" true (contains_sub text "branch 0: compiled");
  let bad = Term.Join (Term.Rel "E", Term.Project ([], Term.Rel "E")) in
  let text2 = Exec.explain ctx bad in
  check_bool "interpreted nodes annotated with the reason" true
    (contains_sub text2 "[interpreted: zero_arity]");
  let ctx3 = session ~force_plan:Exec.P_plw_pg () in
  let text3 = Exec.explain ctx3 closure_term in
  check_bool "P_plw^pg local plan verdict" true
    (contains_sub text3 "local plan: compiled batch fixpoint")

(* the P_plw^pg local executor agrees with the Instance oracle and
   rejects non-fixpoints statically *)
let test_bexec_local () =
  let tc_step =
    Term.Antiproject
      ( [ "_m" ],
        Term.Join
          ( Term.Rename ([ ("trg", "_m") ], Term.Var "X"),
            Term.Rename ([ ("src", "_m") ], Term.Rel "E") ) )
  in
  let local = Term.Fix ("X", Term.union_all [ Term.Rel "__seed"; tc_step ]) in
  let env = [ ("__seed", sch [ "src"; "trg" ]); ("E", sch [ "src"; "trg" ]) ] in
  let db = Localdb.Instance.create () in
  Localdb.Instance.register db "E" edges;
  Localdb.Instance.register db "__seed" edges;
  (match Localdb.Bexec.plan ~env local with
  | Error r -> Alcotest.failf "bexec rejected the TC local plan: %s" r
  | Ok p ->
    let got = Localdb.Bexec.run p db in
    let want = Localdb.Instance.query db local in
    check_rel "bexec = instance oracle" (Rel.relayout (Rel.schema got) want) got);
  match Localdb.Bexec.plan ~env (Term.Rel "E") with
  | Error "not_a_fixpoint" -> ()
  | Error r -> Alcotest.failf "wrong rejection slug: %s" r
  | Ok _ -> Alcotest.fail "non-fixpoint must be rejected"

(* grouped reductions as fused batch folds agree with a naive driver fold *)
let test_group_aggregates () =
  let cluster = Cluster.make ~workers:4 () in
  let canon = Rel.relayout (sch [ "src"; "trg" ]) edges in
  let d = Distsim.Dds.of_rel cluster canon in
  let counts = Physical.Agg_exec.group_count cluster ~key:[ "src" ] d in
  let tbl = Hashtbl.create 16 in
  Rel.iter
    (fun tu ->
      Hashtbl.replace tbl tu.(0) (1 + Option.value ~default:0 (Hashtbl.find_opt tbl tu.(0))))
    canon;
  let expected = rel [ "src"; "count" ] (Hashtbl.fold (fun k v acc -> [ k; v ] :: acc) tbl []) in
  check_rel "group_count" expected counts;
  let mins = Physical.Agg_exec.group_min cluster ~key:[ "trg" ] ~value:"src" d in
  let tbl2 = Hashtbl.create 16 in
  Rel.iter
    (fun tu ->
      match Hashtbl.find_opt tbl2 tu.(1) with
      | Some v -> Hashtbl.replace tbl2 tu.(1) (min v tu.(0))
      | None -> Hashtbl.add tbl2 tu.(1) tu.(0))
    canon;
  let expected2 = rel [ "trg"; "src" ] (Hashtbl.fold (fun k v acc -> [ k; v ] :: acc) tbl2 []) in
  check_rel "group_min" expected2 mins

(* capacity-hint audit: the batch paths presize every output, so neither
   the shell's materialize/union/to_dds nor the local batch fixpoint
   ever triggers an insert-time rehash *)
let test_compiled_batch_no_rehash () =
  let g = er_graph ~n:30 ~m:120 ~seed:11 in
  let cluster = Cluster.make ~workers:2 () in
  let d = Distsim.Dds.of_rel cluster g in
  let c0 = Sh.of_dds cluster d in
  Tset.reset_rehash_grows ();
  let m =
    Sh.materialize cluster (Sh.project [ "src" ] (Sh.filter (fun tu -> tu.(0) land 1 = 0) c0))
  in
  ignore (Sh.to_dds cluster (Sh.union cluster m m));
  check_int "no insert-triggered rehash in shell materialize/union" 0 (Tset.rehash_grow_count ());
  let tc_step =
    Term.Antiproject
      ( [ "_m" ],
        Term.Join
          ( Term.Rename ([ ("trg", "_m") ], Term.Var "X"),
            Term.Rename ([ ("src", "_m") ], Term.Rel "E") ) )
  in
  let local = Term.Fix ("X", Term.union_all [ Term.Rel "__seed"; tc_step ]) in
  let env = [ ("__seed", sch [ "src"; "trg" ]); ("E", sch [ "src"; "trg" ]) ] in
  let db = Localdb.Instance.create () in
  Localdb.Instance.register db "E" g;
  Localdb.Instance.register db "__seed" g;
  match Localdb.Bexec.plan ~env local with
  | Error r -> Alcotest.failf "bexec rejected: %s" r
  | Ok p ->
    Tset.reset_rehash_grows ();
    ignore (Localdb.Bexec.run p db);
    check_int "no insert-triggered rehash in the local batch fixpoint" 0
      (Tset.rehash_grow_count ())

(* --- incremental fixpoint maintenance -------------------------------- *)

module Incr = Exec.Incr

let incr_config ~force_plan ~workers ~compiled =
  let cluster = Cluster.make ~workers () in
  { (Exec.default_config cluster) with force_plan = Some force_plan; use_compiled_exec = compiled }

let eval_on tables term = Mura.Eval.eval (Mura.Eval.env tables) term

(* Parity contract: establish, apply a batch, and the repaired result is
   bit-identical to a from-scratch evaluation on the updated catalog —
   across both plans, worker counts and execution modes, including a
   second repair on top of the first. *)
let test_incr_insert_parity () =
  let base = er_graph ~n:30 ~m:45 ~seed:11 in
  let batch1 = rel [ "src"; "trg" ] [ [ 0; 17 ]; [ 17; 23 ]; [ 5; 0 ] ] in
  let batch2 = rel [ "src"; "trg" ] [ [ 23; 29 ]; [ 29; 5 ] ] in
  List.iter
    (fun plan ->
      List.iter
        (fun workers ->
          List.iter
            (fun compiled ->
              let label =
                Printf.sprintf "%s w=%d compiled=%b" (Exec.plan_name plan) workers compiled
              in
              let config = incr_config ~force_plan:plan ~workers ~compiled in
              let h = Incr.establish config ~tables:[ ("E", base) ] closure_term in
              let apply batch =
                match Incr.update ~inserts:[ ("E", batch) ] h with
                | `Repaired (r, _) -> r
                | `Unsupported msg -> Alcotest.failf "%s: unsupported: %s" label msg
              in
              let after1 = apply batch1 in
              let tables1 = [ ("E", Rel.union base batch1) ] in
              check_rel (label ^ ": first repair") (eval_on tables1 closure_term) after1;
              let after2 = apply batch2 in
              let tables2 = [ ("E", Rel.union (Rel.union base batch1) batch2) ] in
              check_rel (label ^ ": repair of repair") (eval_on tables2 closure_term) after2;
              check_int (label ^ ": resumes counted") 2 (Incr.resumes h))
            [ false; true ])
        [ 1; 4 ])
    [ Exec.P_gld; Exec.P_plw_s ]

let test_incr_delete_parity () =
  let deletes = rel [ "src"; "trg" ] [ [ 3; 4 ]; [ 12; 10 ] ] in
  let inserts = rel [ "src"; "trg" ] [ [ 4; 20 ]; [ 20; 3 ] ] in
  List.iter
    (fun plan ->
      List.iter
        (fun compiled ->
          let label = Printf.sprintf "%s compiled=%b" (Exec.plan_name plan) compiled in
          let config = incr_config ~force_plan:plan ~workers:4 ~compiled in
          let h = Incr.establish config ~tables:[ ("E", edges) ] closure_term in
          (match Incr.update ~deletes:[ ("E", deletes) ] h with
          | `Repaired (r, _) ->
            let tables = [ ("E", Rel.diff edges deletes) ] in
            check_rel (label ^ ": DRed delete") (eval_on tables closure_term) r
          | `Unsupported msg -> Alcotest.failf "%s: unsupported: %s" label msg);
          match Incr.update ~inserts:[ ("E", inserts) ] ~deletes:[ ("E", deletes) ] h with
          | `Repaired (r, _) ->
            (* the first update already removed [deletes]; this one is an
               effective pure insert riding through the combined path *)
            let tables = [ ("E", Rel.union (Rel.diff edges deletes) inserts) ] in
            check_rel (label ^ ": combined update") (eval_on tables closure_term) r
          | `Unsupported msg -> Alcotest.failf "%s: unsupported: %s" label msg)
        [ false; true ])
    [ Exec.P_gld; Exec.P_plw_s ]

let test_incr_noop_update () =
  let config = incr_config ~force_plan:Exec.P_plw_s ~workers:2 ~compiled:true in
  let h = Incr.establish config ~tables:[ ("E", edges) ] closure_term in
  let before = Incr.result h in
  (* inserting already-present tuples and deleting absent ones is a no-op *)
  match
    Incr.update
      ~inserts:[ ("E", rel [ "src"; "trg" ] [ [ 1; 2 ] ]) ]
      ~deletes:[ ("E", rel [ "src"; "trg" ] [ [ 77; 78 ] ]) ]
      h
  with
  | `Repaired (r, iters) ->
    check_rel "result unchanged" before r;
    check_int "no resumed iterations" 0 iters;
    check_int "not counted as a resume" 0 (Incr.resumes h)
  | `Unsupported msg -> Alcotest.failf "unsupported: %s" msg

let test_incr_unsupported () =
  (* changed relation under an antijoin right side: insertion can retract
     derived tuples, so the update must refuse and leave the handle
     untouched *)
  let blocked = rel [ "src" ] [ [ 10 ] ] in
  let term =
    Term.Fix ("X", Term.Union (Term.Rel "E", Term.Antijoin (Term.Var "X", Term.Rel "D")))
  in
  let config = incr_config ~force_plan:Exec.P_gld ~workers:2 ~compiled:true in
  let h = Incr.establish config ~tables:[ ("E", edges); ("D", blocked) ] term in
  let before = Incr.result h in
  (match Incr.update ~inserts:[ ("D", rel [ "src" ] [ [ 3 ] ]) ] h with
  | `Unsupported _ -> ()
  | `Repaired _ -> Alcotest.fail "antijoin-right update must be unsupported");
  check_rel "handle untouched" before (Incr.result h);
  (match Incr.update ~inserts:[ ("F", rel [ "src"; "trg" ] [ [ 1; 2 ] ]) ] h with
  | `Unsupported _ -> ()
  | `Repaired _ -> Alcotest.fail "unregistered relation must be unsupported");
  (match Incr.update ~inserts:[ ("E", rel [ "a"; "b" ] [ [ 1; 2 ] ]) ] h with
  | `Unsupported _ -> ()
  | `Repaired _ -> Alcotest.fail "schema mismatch must be unsupported");
  (* inserts touching only the antijoin-left relation still repair *)
  match Incr.update ~inserts:[ ("E", rel [ "src"; "trg" ] [ [ 6; 10 ] ]) ] h with
  | `Repaired (r, _) ->
    let tables =
      [ ("E", Rel.union edges (rel [ "src"; "trg" ] [ [ 6; 10 ] ])); ("D", blocked) ]
    in
    check_rel "antijoin-left insert repairs" (eval_on tables term) r
  | `Unsupported msg -> Alcotest.failf "unsupported: %s" msg

let test_incr_establish_shapes () =
  let config = incr_config ~force_plan:Exec.P_gld ~workers:2 ~compiled:true in
  (match Incr.establish config ~tables:[ ("E", edges) ] (Term.Rel "E") with
  | exception Incr.Unsupported _ -> ()
  | _ -> Alcotest.fail "non-fixpoint establish must raise");
  let pg = incr_config ~force_plan:Exec.P_plw_pg ~workers:2 ~compiled:true in
  match Incr.establish pg ~tables:[ ("E", edges) ] closure_term with
  | exception Incr.Unsupported _ -> ()
  | _ -> Alcotest.fail "P_plw^pg establish must raise"

let () =
  Alcotest.run "physical"
    [
      ( "analyze",
        [
          Alcotest.test_case "results bit-identical with analyze" `Quick
            test_analyze_no_observable_effect;
          Alcotest.test_case "root actual = result cardinality" `Quick test_analyze_root_actual;
          Alcotest.test_case "fixpoint deltas recorded" `Quick test_analyze_deltas;
          Alcotest.test_case "plw_pg local actuals" `Quick test_analyze_plw_pg_locals;
          Alcotest.test_case "render" `Quick test_analyze_render;
        ] );
      ( "plans",
        [
          Alcotest.test_case "P_gld" `Quick (test_plan_agreement (Some Exec.P_gld));
          Alcotest.test_case "P_plw^s" `Quick (test_plan_agreement (Some Exec.P_plw_s));
          Alcotest.test_case "P_plw^pg" `Quick (test_plan_agreement (Some Exec.P_plw_pg));
          Alcotest.test_case "auto selection" `Quick (test_plan_agreement None);
        ] );
      ( "selection",
        [
          Alcotest.test_case "stable -> P_plw" `Quick test_auto_selection_stable;
          Alcotest.test_case "unstable -> P_gld" `Quick test_auto_selection_unstable;
        ] );
      ( "communication",
        [
          Alcotest.test_case "profiles" `Quick test_communication_profile;
          Alcotest.test_case "plw disjointness" `Quick test_plw_disjoint_partitions;
        ] );
      ( "integration",
        [
          Alcotest.test_case "filtered closure" `Quick test_filtered_closure_all_plans;
          Alcotest.test_case "non-recursive ops" `Quick test_nonrecursive_operators;
          Alcotest.test_case "resource limit" `Quick test_resource_limit;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "distributed shortest paths" `Quick test_distributed_shortest_paths;
          Alcotest.test_case "same generation" `Quick test_same_generation_plans;
        ] );
      ( "fused delta",
        [
          Alcotest.test_case "fused/dedup parity" `Quick test_fused_parity;
          Alcotest.test_case "empty first delta" `Quick test_fused_empty_first_delta;
          Alcotest.test_case "dedup shrinks P_gld shuffle" `Quick test_dedup_reduces_gld_shuffle;
          Alcotest.test_case "explain shows delta mode" `Quick test_explain_delta_mode;
        ] );
      ( "compiled exec",
        [
          Alcotest.test_case "compiled/interpreted parity" `Quick test_compiled_parity;
          Alcotest.test_case "compiler engagement" `Quick test_compiled_engagement;
          Alcotest.test_case "explain shows execution mode" `Quick test_explain_exec_mode;
        ] );
      ( "compiled shell",
        [
          Alcotest.test_case "shell parity (all plans)" `Quick test_shell_parity;
          Alcotest.test_case "shuffle/cartesian shell parity" `Quick test_shell_shuffle_parity;
          Alcotest.test_case "per-subtree fallback + telemetry" `Quick test_shell_subtree_fallback;
          Alcotest.test_case "no double const evaluation" `Quick test_shell_no_double_const_eval;
          Alcotest.test_case "explain annotates subtrees" `Quick test_shell_explain;
          Alcotest.test_case "bexec local fixpoint" `Quick test_bexec_local;
          Alcotest.test_case "grouped batch folds" `Quick test_group_aggregates;
          Alcotest.test_case "zero-rehash capacity audit" `Quick test_compiled_batch_no_rehash;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "insert-and-resume parity" `Quick test_incr_insert_parity;
          Alcotest.test_case "DRed delete parity" `Quick test_incr_delete_parity;
          Alcotest.test_case "no-op update" `Quick test_incr_noop_update;
          Alcotest.test_case "unsupported updates refuse" `Quick test_incr_unsupported;
          Alcotest.test_case "establish shape checks" `Quick test_incr_establish_shapes;
        ] );
      ("properties", [ prop_all_plans_agree; prop_reach_all_plans; prop_random_terms_all_plans ]);
    ]
