(* Unit and property tests for the relation kernel. *)

open Relation

let sch = Schema.of_list
let rel schema rows = Rel.of_list (sch schema) rows
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_rel msg expected actual =
  if not (Rel.equal expected actual) then
    Alcotest.failf "%s:@.expected %a@.got %a" msg Rel.pp_full expected Rel.pp_full actual

(* ------------------------------------------------------------------ *)
(* Dict / Value                                                        *)
(* ------------------------------------------------------------------ *)

let test_dict_roundtrip () =
  let h = Dict.intern "Japan" in
  check_bool "negative handle" true (h < 0);
  check_int "idempotent" h (Dict.intern "Japan");
  Alcotest.(check string) "lookup" "Japan" (Dict.lookup h);
  check_bool "is_handle" true (Dict.is_handle h)

let test_value_kinds () =
  let v = Value.of_int 42 in
  check_bool "int not symbol" false (Value.is_symbol v);
  Alcotest.(check string) "int print" "42" (Value.to_string v);
  let s = Value.of_string "label" in
  check_bool "symbol" true (Value.is_symbol s);
  Alcotest.(check string) "symbol print" "label" (Value.to_string s);
  Alcotest.check_raises "negative int rejected" (Invalid_argument "Value.of_int: negative")
    (fun () -> ignore (Value.of_int (-1)))

(* ------------------------------------------------------------------ *)
(* Tset                                                                *)
(* ------------------------------------------------------------------ *)

let test_tset_basic () =
  let s = Tset.create () in
  check_bool "add new" true (Tset.add s [| 1; 2 |]);
  check_bool "add dup" false (Tset.add s [| 1; 2 |]);
  check_bool "add other" true (Tset.add s [| 2; 1 |]);
  check_int "cardinal" 2 (Tset.cardinal s);
  check_bool "mem" true (Tset.mem s [| 1; 2 |]);
  check_bool "not mem" false (Tset.mem s [| 1; 3 |])

let test_tset_unit_tuple () =
  let s = Tset.create () in
  check_bool "empty tuple absent" false (Tset.mem s [||]);
  check_bool "add unit" true (Tset.add s [||]);
  check_bool "re-add unit" false (Tset.add s [||]);
  check_bool "mem unit" true (Tset.mem s [||]);
  check_int "cardinal with unit" 1 (Tset.cardinal s)

let test_tset_growth () =
  let s = Tset.create () in
  for i = 0 to 9_999 do
    ignore (Tset.add s [| i; i * 2; i mod 7 |])
  done;
  check_int "all distinct" 10_000 (Tset.cardinal s);
  for i = 0 to 9_999 do
    if not (Tset.mem s [| i; i * 2; i mod 7 |]) then Alcotest.failf "lost tuple %d" i
  done;
  let copied = Tset.copy s in
  ignore (Tset.add copied [| -1; -1; -1 |]);
  check_int "copy is independent" 10_000 (Tset.cardinal s)

let test_tset_reserve () =
  let s = Tset.create () in
  ignore (Tset.add s [| 1; 1 |]);
  Tset.reserve s 5_000;
  check_int "reserve keeps contents" 1 (Tset.cardinal s);
  check_bool "still member" true (Tset.mem s [| 1; 1 |]);
  for i = 0 to 4_999 do
    ignore (Tset.add s [| i; i + 1 |])
  done;
  check_int "all present after presize" 5_001 (Tset.cardinal s);
  Tset.reserve s 10;
  (* shrinking request: no-op *)
  check_int "never shrinks" 5_001 (Tset.cardinal s);
  check_bool "member after no-op" true (Tset.mem s [| 4_999; 5_000 |])

let test_tset_add_all () =
  let a = Tset.of_list [ [| 1 |]; [| 2 |] ] in
  let b = Tset.of_list [ [| 2 |]; [| 3 |] ] in
  check_int "added" 1 (Tset.add_all a b);
  check_int "merged size" 3 (Tset.cardinal a);
  check_bool "set equality" true (Tset.equal a (Tset.of_list [ [| 3 |]; [| 2 |]; [| 1 |] ]))

let test_tuple_hash_positions () =
  let tuples =
    [
      [| 1; 2; 3 |];
      [| 0; 0; 0 |];
      [| max_int; min_int; 42 |];
      [| Value.of_int 7; Value.of_string "x"; Value.of_string "y" |];
    ]
  in
  let positionss = [ [||]; [| 0 |]; [| 2 |]; [| 0; 2 |]; [| 2; 0 |]; [| 1; 1 |] ] in
  List.iter
    (fun tu ->
      List.iter
        (fun positions ->
          check_int "hash_positions ≡ hash ∘ project"
            (Tuple.hash (Tuple.project positions tu))
            (Tuple.hash_positions positions tu))
        positionss)
    tuples

let test_tset_add_hashed () =
  let s = Tset.create ~capacity:2 () in
  (* interleave add / add_hashed across enough tuples to force resizes:
     dedup and membership must behave exactly like plain [add] *)
  for i = 0 to 99 do
    let tu = [| i; i * 2 |] in
    let added =
      if i mod 2 = 0 then Tset.add_hashed s tu (Tuple.hash tu) else Tset.add s tu
    in
    check_bool "fresh tuple added" true added
  done;
  check_int "cardinal" 100 (Tset.cardinal s);
  for i = 0 to 99 do
    let tu = [| i; i * 2 |] in
    check_bool "mem" true (Tset.mem s tu);
    check_bool "duplicate rejected" false (Tset.add_hashed s tu (Tuple.hash tu))
  done;
  (* zero-arity tuple: hashed like add, ignores the passed hash *)
  check_bool "unit added" true (Tset.add_hashed s [||] 12345);
  check_bool "unit duplicate" false (Tset.add s [||]);
  check_bool "unit mem" true (Tset.mem s [||])

let test_tset_copy_with_capacity () =
  (* must equal copy-then-reserve exactly, including iteration order (the
     table geometry), which the routing of Dds.of_rel depends on *)
  let mk n = Tset.of_list (List.init n (fun i -> [| i; i * 3 |])) in
  List.iter
    (fun (n, cap) ->
      let s = mk n in
      if n > 0 then ignore (Tset.add s [||]);
      let fast = Tset.copy_with_capacity s cap in
      let slow = Tset.copy s in
      Tset.reserve slow cap;
      let order t =
        let acc = ref [] in
        Tset.iter (fun tu -> acc := tu :: !acc) t;
        !acc
      in
      check_bool "same contents" true (Tset.equal fast slow);
      check_bool "same iteration order" true (order fast = order slow);
      (* independence: growing the copy never touches the source *)
      ignore (Tset.add fast [| -1; -1 |]);
      check_int "source untouched" (Tset.cardinal s + 1) (Tset.cardinal fast))
    [ (0, 0); (0, 100); (5, 5); (5, 1_000); (57, 10_000); (1_000, 1_000_000) ]

let test_tset_absorb_fresh () =
  let dst = Tset.of_list [ [| 1 |]; [| 2 |]; [| 3 |] ] in
  let src = Tset.of_list [ [| 2 |]; [| 3 |]; [| 4 |]; [| 5 |] ] in
  let fresh = Tset.absorb_fresh dst src in
  check_bool "fresh = src \\ dst" true (Tset.equal fresh (Tset.of_list [ [| 4 |]; [| 5 |] ]));
  check_int "dst absorbed union" 5 (Tset.cardinal dst);
  for i = 1 to 5 do
    check_bool "dst member" true (Tset.mem dst [| i |])
  done;
  (* absorbing again: nothing fresh *)
  check_int "idempotent" 0 (Tset.cardinal (Tset.absorb_fresh dst src));
  (* src is never mutated *)
  check_int "src untouched" 4 (Tset.cardinal src)

let test_tset_absorb_fresh_unit () =
  (* zero-arity tuple travels through the has_unit flag, not the table *)
  let dst = Tset.create () in
  let src = Tset.of_list [ [||]; [| 7 |] ] in
  let fresh = Tset.absorb_fresh dst src in
  check_bool "unit is fresh" true (Tset.mem fresh [||]);
  check_bool "unit absorbed" true (Tset.mem dst [||]);
  check_int "fresh count" 2 (Tset.cardinal fresh);
  let fresh2 = Tset.absorb_fresh dst (Tset.of_list [ [||] ]) in
  check_bool "unit no longer fresh" true (Tset.is_empty fresh2)

let test_tset_absorb_fresh_resize () =
  (* small dst, large src: the up-front reserve must cover the whole
     absorb so membership survives the growth *)
  let dst = Tset.create ~capacity:2 () in
  ignore (Tset.add dst [| -1; -1 |]);
  let src = Tset.of_list (List.init 5_000 (fun i -> [| i; i + 1 |])) in
  let fresh = Tset.absorb_fresh dst src in
  check_int "all fresh" 5_000 (Tset.cardinal fresh);
  check_int "dst = old + fresh" 5_001 (Tset.cardinal dst);
  for i = 0 to 4_999 do
    if not (Tset.mem dst [| i; i + 1 |]) then Alcotest.failf "lost tuple %d" i
  done;
  (* overlapping second wave: only the new half is fresh *)
  let src2 = Tset.of_list (List.init 6_000 (fun i -> [| i; i + 1 |])) in
  let fresh2 = Tset.absorb_fresh dst src2 in
  check_int "second wave fresh" 1_000 (Tset.cardinal fresh2);
  check_int "dst grew by fresh" 6_001 (Tset.cardinal dst);
  check_bool "old survivor" true (Tset.mem dst [| -1; -1 |])

let test_tset_iter_slice () =
  let sets =
    [
      Tset.create ();
      Tset.of_list [ [| 1 |] ];
      Tset.of_list (List.init 57 (fun i -> [| i; i + 1 |]));
      Tset.of_list ([||] :: List.init 10 (fun i -> [| i |]));
    ]
  in
  List.iter
    (fun s ->
      let whole = ref [] in
      Tset.iter (fun tu -> whole := tu :: !whole) s;
      List.iter
        (fun slices ->
          let sliced = ref [] in
          for slice = 0 to slices - 1 do
            Tset.iter_slice (fun tu -> sliced := tu :: !sliced) s ~slice ~slices
          done;
          check_bool
            (Printf.sprintf "%d slices concatenate to iter order" slices)
            true
            (!sliced = !whole))
        [ 1; 2; 3; 7; 64 ])
    sets;
  Alcotest.check_raises "bad slice" (Invalid_argument "Tset.iter_slice") (fun () ->
      Tset.iter_slice ignore (Tset.create ()) ~slice:2 ~slices:2)

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let test_schema_basics () =
  let s = sch [ "a"; "b"; "c" ] in
  check_int "arity" 3 (Schema.arity s);
  check_int "index" 1 (Schema.index_of s "b");
  check_bool "mem" true (Schema.mem s "c");
  Alcotest.check_raises "duplicate rejected" (Schema.Schema_error "duplicate column \"a\"")
    (fun () -> ignore (sch [ "a"; "a" ]))

let test_schema_ops () =
  let s = sch [ "a"; "b"; "c" ] in
  check_bool "minus" true (Schema.equal_ordered (Schema.minus s [ "b" ]) (sch [ "a"; "c" ]));
  check_bool "restrict order" true
    (Schema.equal_ordered (Schema.restrict s [ "c"; "a" ]) (sch [ "c"; "a" ]));
  check_bool "equal_names unordered" true (Schema.equal_names s (sch [ "c"; "a"; "b" ]));
  check_bool "not equal_names" false (Schema.equal_names s (sch [ "a"; "b" ]));
  let renamed = Schema.rename [ ("a", "x") ] s in
  check_bool "rename" true (Schema.equal_ordered renamed (sch [ "x"; "b"; "c" ]));
  Alcotest.(check (list string)) "common" [ "b"; "c" ]
    (Schema.common s (sch [ "c"; "d"; "b" ]))

let test_schema_rename_errors () =
  let s = sch [ "a"; "b" ] in
  let expect_err f = match f () with
    | exception Schema.Schema_error _ -> ()
    | _ -> Alcotest.fail "expected Schema_error"
  in
  expect_err (fun () -> Schema.rename [ ("z", "x") ] s);
  expect_err (fun () -> Schema.rename [ ("a", "b") ] s);
  expect_err (fun () -> Schema.rename [ ("a", "x"); ("a", "y") ] s)

let test_schema_reorder () =
  let from = sch [ "a"; "b"; "c" ] and into = sch [ "c"; "a"; "b" ] in
  let perm = Schema.reorder_positions ~from ~into in
  Alcotest.(check (array int)) "perm" [| 2; 0; 1 |] perm;
  Alcotest.(check (array int)) "apply" [| 30; 10; 20 |] (Tuple.project perm [| 10; 20; 30 |])

(* ------------------------------------------------------------------ *)
(* Rel operators                                                       *)
(* ------------------------------------------------------------------ *)

let e_rel () = rel [ "src"; "trg" ] [ [ 1; 2 ]; [ 2; 3 ]; [ 1; 3 ]; [ 3; 4 ] ]

let test_select () =
  let r = e_rel () in
  check_rel "src=1"
    (rel [ "src"; "trg" ] [ [ 1; 2 ]; [ 1; 3 ] ])
    (Rel.select (Pred.Eq_const ("src", 1)) r);
  check_rel "src=trg empty" (Rel.create (sch [ "src"; "trg" ]))
    (Rel.select (Pred.Eq_col ("src", "trg")) r);
  check_rel "and"
    (rel [ "src"; "trg" ] [ [ 1; 2 ] ])
    (Rel.select (Pred.And (Eq_const ("src", 1), Eq_const ("trg", 2))) r);
  check_rel "or / not"
    (rel [ "src"; "trg" ] [ [ 1; 2 ]; [ 2; 3 ]; [ 1; 3 ] ])
    (Rel.select (Pred.Not (Eq_const ("src", 3))) r)

let test_project_antiproject () =
  let r = e_rel () in
  check_rel "project src" (rel [ "src" ] [ [ 1 ]; [ 2 ]; [ 3 ] ]) (Rel.project [ "src" ] r);
  check_rel "antiproject trg = project src" (Rel.project [ "src" ] r)
    (Rel.antiproject [ "trg" ] r);
  check_int "dedup happened" 3 (Rel.cardinal (Rel.project [ "src" ] r))

let test_rename () =
  let r = e_rel () in
  let swapped = Rel.rename [ ("src", "trg"); ("trg", "src") ] r in
  check_rel "swap columns = inverse edges"
    (rel [ "src"; "trg" ] [ [ 2; 1 ]; [ 3; 2 ]; [ 3; 1 ]; [ 4; 3 ] ])
    swapped

let test_join () =
  let r = e_rel () in
  let s = Rel.rename [ ("src", "trg"); ("trg", "dst2") ] (e_rel ()) in
  (* join on trg: paths of length 2 *)
  let j = Rel.natural_join r s in
  check_rel "2-paths"
    (rel [ "src"; "trg"; "dst2" ]
       [ [ 1; 2; 3 ]; [ 2; 3; 4 ]; [ 1; 3; 4 ] ])
    j

let test_join_cartesian () =
  let a = rel [ "a" ] [ [ 1 ]; [ 2 ] ] in
  let b = rel [ "b" ] [ [ 10 ]; [ 20 ] ] in
  check_rel "product"
    (rel [ "a"; "b" ] [ [ 1; 10 ]; [ 1; 20 ]; [ 2; 10 ]; [ 2; 20 ] ])
    (Rel.natural_join a b)

let test_antijoin () =
  let r = e_rel () in
  let sinks = rel [ "trg" ] [ [ 3 ] ] in
  check_rel "edges not into 3"
    (rel [ "src"; "trg" ] [ [ 1; 2 ]; [ 3; 4 ] ])
    (Rel.antijoin r sinks);
  (* no shared columns: keeps left iff right empty *)
  let empty1 = Rel.create (sch [ "zz" ]) in
  check_rel "right empty keeps all" r (Rel.antijoin r empty1);
  check_rel "right nonempty drops all" (Rel.create (sch [ "src"; "trg" ]))
    (Rel.antijoin r (rel [ "zz" ] [ [ 0 ] ]))

let test_union_diff_reorder () =
  let a = rel [ "x"; "y" ] [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = rel [ "y"; "x" ] [ [ 2; 1 ]; [ 6; 5 ] ] in
  check_rel "union permutes" (rel [ "x"; "y" ] [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ] ]) (Rel.union a b);
  check_rel "diff permutes" (rel [ "x"; "y" ] [ [ 3; 4 ] ]) (Rel.diff a b);
  check_rel "inter permutes" (rel [ "x"; "y" ] [ [ 1; 2 ] ]) (Rel.inter a b);
  check_bool "equal modulo order" true
    (Rel.equal a (rel [ "y"; "x" ] [ [ 2; 1 ]; [ 4; 3 ] ]))

let test_distinct_count () =
  let r = e_rel () in
  check_int "src distinct" 3 (Rel.distinct_count r "src");
  check_int "trg distinct" 3 (Rel.distinct_count r "trg")

let test_rel_io () =
  let path = Filename.temp_file "distmura" ".edges" in
  let r = rel [ "src"; "trg" ] [ [ 1; 2 ]; [ 7; 8 ] ] in
  Rel_io.save path r;
  let back = Rel_io.load_edges path in
  check_rel "roundtrip" r back;
  Sys.remove path

let test_rel_io_labelled () =
  let path = Filename.temp_file "distmura" ".nt" in
  let oc = open_out path in
  output_string oc "# comment\n1 knows 2\n2 likes 3\n";
  close_out oc;
  let r = Rel_io.load_labelled_edges path in
  check_int "two edges" 2 (Rel.cardinal r);
  let knows = Rel.select (Pred.Eq_const ("pred", Value.of_string "knows")) r in
  check_int "one knows" 1 (Rel.cardinal knows);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let small_rel_gen cols =
  let open QCheck2.Gen in
  let tuple = array_size (pure (List.length cols)) (int_range 0 8) in
  let+ rows = list_size (int_range 0 25) tuple in
  Rel.of_tuples (sch cols) rows

let qtest name gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen prop)

let prop_union_commutes =
  qtest "union commutative"
    QCheck2.Gen.(pair (small_rel_gen [ "a"; "b" ]) (small_rel_gen [ "a"; "b" ]))
    (fun (r, s) -> Rel.equal (Rel.union r s) (Rel.union s r))

let prop_join_commutes =
  qtest "join commutative modulo layout"
    QCheck2.Gen.(pair (small_rel_gen [ "a"; "b" ]) (small_rel_gen [ "b"; "c" ]))
    (fun (r, s) -> Rel.equal (Rel.natural_join r s) (Rel.natural_join s r))

let prop_join_assoc =
  qtest "join associative"
    QCheck2.Gen.(
      triple (small_rel_gen [ "a"; "b" ]) (small_rel_gen [ "b"; "c" ]) (small_rel_gen [ "c"; "d" ]))
    (fun (r, s, t) ->
      Rel.equal
        (Rel.natural_join (Rel.natural_join r s) t)
        (Rel.natural_join r (Rel.natural_join s t)))

let prop_diff_union =
  qtest "a = (a\\b) ∪ (a∩b)"
    QCheck2.Gen.(pair (small_rel_gen [ "a"; "b" ]) (small_rel_gen [ "a"; "b" ]))
    (fun (r, s) -> Rel.equal r (Rel.union (Rel.diff r s) (Rel.inter r s)))

let prop_antijoin_select =
  qtest "antijoin = filter by non-membership"
    QCheck2.Gen.(pair (small_rel_gen [ "a"; "b" ]) (small_rel_gen [ "b" ]))
    (fun (r, s) ->
      let expected =
        Rel.of_tuples (sch [ "a"; "b" ])
          (List.filter (fun tu -> not (Rel.mem s [| tu.(1) |])) (Rel.to_list r))
      in
      Rel.equal expected (Rel.antijoin r s))

let prop_select_idempotent =
  qtest "select idempotent" (small_rel_gen [ "a"; "b" ]) (fun r ->
      let p = Pred.Eq_const ("a", 3) in
      Rel.equal (Rel.select p r) (Rel.select p (Rel.select p r)))

let prop_tset_mem_after_add =
  qtest "tset: added tuples are members"
    QCheck2.Gen.(list_size (int_range 0 100) (array_size (pure 2) (int_range 0 50)))
    (fun rows ->
      let s = Tset.of_list rows in
      List.for_all (Tset.mem s) rows
      && Tset.cardinal s
         = List.length
             (List.sort_uniq compare (List.map Array.to_list rows)))

(* ------------------------------------------------------------------ *)
(* Columnar batches (compiled execution core)                          *)
(* ------------------------------------------------------------------ *)

(* random arity and rows together, so every property covers arities 1-4 *)
let batch_input_gen =
  let open QCheck2.Gen in
  let* arity = int_range 1 4 in
  let+ rows = list_size (int_range 0 120) (array_size (pure arity) (int_range (-4) 20)) in
  (arity, rows)

let prop_batch_roundtrip =
  qtest "batch: tset -> batch -> tset round-trips" batch_input_gen (fun (arity, rows) ->
      let s = Tset.of_list rows in
      let s' = Batch.to_tset (Batch.of_tset ~arity s) in
      Tset.cardinal s = Tset.cardinal s' && List.for_all (Tset.mem s') rows)

let prop_batch_hash_column =
  qtest "batch: hash column = Tuple.hash of each row" batch_input_gen (fun (arity, rows) ->
      let b = Batch.of_tset ~arity (Tset.of_list rows) in
      let ok = ref true in
      for i = 0 to Batch.length b - 1 do
        if Batch.hash b i <> Tuple.hash (Batch.to_tuple b i) then ok := false
      done;
      !ok)

let prop_builder_dedup =
  qtest "batch builder dedups exactly" batch_input_gen (fun (arity, rows) ->
      let bld = Batch.Builder.create ~arity () in
      let appended =
        List.filter
          (fun row ->
            let sc = Batch.Builder.scratch bld in
            Array.blit row 0 sc 0 arity;
            Batch.Builder.add_scratch bld (Batch.hash_row sc))
          rows
      in
      let distinct = List.length (List.sort_uniq compare (List.map Array.to_list rows)) in
      List.length appended = distinct
      && Batch.Builder.length bld = distinct
      && Tset.cardinal (Batch.to_tset (Batch.Builder.batch bld)) = distinct)

let test_batch_no_rehash () =
  (* the batch->set converters presize for the exact row count: the
     insert-triggered grow counter must stay at zero *)
  let rows = List.init 500 (fun i -> [| i; i * 7 |]) in
  let s = Tset.of_list rows in
  let b = Batch.of_tset ~arity:2 s in
  Tset.reset_rehash_grows ();
  let s' = Batch.to_tset b in
  check_int "cardinal preserved" (Tset.cardinal s) (Tset.cardinal s');
  let acc = Tset.create ~capacity:4 () in
  Batch.add_to_tset b acc;
  check_int "add_to_tset reserves" (Tset.cardinal s) (Tset.cardinal acc);
  check_int "no insert-triggered rehash" 0 (Tset.rehash_grow_count ())

let () =
  Alcotest.run "relation"
    [
      ( "dict-value",
        [
          Alcotest.test_case "dict roundtrip" `Quick test_dict_roundtrip;
          Alcotest.test_case "value kinds" `Quick test_value_kinds;
        ] );
      ( "tset",
        [
          Alcotest.test_case "basic" `Quick test_tset_basic;
          Alcotest.test_case "unit tuple" `Quick test_tset_unit_tuple;
          Alcotest.test_case "growth" `Quick test_tset_growth;
          Alcotest.test_case "reserve" `Quick test_tset_reserve;
          Alcotest.test_case "add_all" `Quick test_tset_add_all;
          Alcotest.test_case "hash_positions" `Quick test_tuple_hash_positions;
          Alcotest.test_case "add_hashed" `Quick test_tset_add_hashed;
          Alcotest.test_case "copy_with_capacity" `Quick test_tset_copy_with_capacity;
          Alcotest.test_case "absorb_fresh" `Quick test_tset_absorb_fresh;
          Alcotest.test_case "absorb_fresh unit tuple" `Quick test_tset_absorb_fresh_unit;
          Alcotest.test_case "absorb_fresh resize" `Quick test_tset_absorb_fresh_resize;
          Alcotest.test_case "iter_slice" `Quick test_tset_iter_slice;
          prop_tset_mem_after_add;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "ops" `Quick test_schema_ops;
          Alcotest.test_case "rename errors" `Quick test_schema_rename_errors;
          Alcotest.test_case "reorder" `Quick test_schema_reorder;
        ] );
      ( "operators",
        [
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "project/antiproject" `Quick test_project_antiproject;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "cartesian" `Quick test_join_cartesian;
          Alcotest.test_case "antijoin" `Quick test_antijoin;
          Alcotest.test_case "union/diff reorder" `Quick test_union_diff_reorder;
          Alcotest.test_case "distinct count" `Quick test_distinct_count;
        ] );
      ( "io",
        [
          Alcotest.test_case "edge roundtrip" `Quick test_rel_io;
          Alcotest.test_case "labelled" `Quick test_rel_io_labelled;
        ] );
      ( "batch",
        [
          Alcotest.test_case "converters never rehash" `Quick test_batch_no_rehash;
          prop_batch_roundtrip;
          prop_batch_hash_column;
          prop_builder_dedup;
        ] );
      ( "properties",
        [
          prop_union_commutes;
          prop_join_commutes;
          prop_join_assoc;
          prop_diff_union;
          prop_antijoin_select;
          prop_select_idempotent;
        ] );
    ]
