(* Tests for the serving layer: result-cache hits skip the fixpoint
   entirely, cached results are bit-identical to uncached evaluation
   across fixpoint plans and worker counts, registration invalidates
   exactly the dependent entries, the LRU byte budget evicts, admission
   is fair across sessions, and concurrent queries sharing a fixpoint
   subterm evaluate it exactly once. *)

open Relation
module Term = Mura.Term
module Patterns = Mura.Patterns
module Exec = Physical.Exec
module Cluster = Distsim.Cluster
module Metrics = Distsim.Metrics

let sch = Schema.of_list
let rel schema rows = Rel.of_list (sch schema) rows
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_rel msg expected actual =
  if not (Rel.equal expected actual) then
    Alcotest.failf "%s:@.expected %a@.got %a" msg Rel.pp_full expected Rel.pp_full actual

(* two chains joined through a cycle: several fixpoint iterations *)
let edges =
  rel [ "src"; "trg" ]
    [
      [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 4; 5 ]; [ 5; 6 ];
      [ 10; 11 ]; [ 11; 12 ]; [ 12; 10 ];
      [ 3; 10 ]; [ 6; 1 ];
    ]

let edges2 = rel [ "src"; "trg" ] [ [ 1; 2 ]; [ 2; 3 ]; [ 7; 8 ] ]
let eval_on graph term = Mura.Eval.eval (Mura.Eval.env [ ("E", graph) ]) term

let make_serve ?max_inflight ?plan_cache_capacity ?result_cache_bytes ?max_repair_handles
    ?repair_max_delta_frac ?force_plan ?(workers = 2) ?(parallel = false) () =
  let cluster = Cluster.make ~parallel ~workers () in
  let config =
    match force_plan with
    | None -> None
    | Some _ -> Some { (Exec.default_config cluster) with Exec.force_plan }
  in
  let t =
    Serve.create ?max_inflight ?plan_cache_capacity ?result_cache_bytes ?max_repair_handles
      ?repair_max_delta_frac ?config ~cluster ()
  in
  Serve.register t "E" edges;
  t

(* ---- result cache: repeat query skips the fixpoint ---- *)

let test_result_cache_hit () =
  let t = make_serve () in
  let sn = Serve.open_session t in
  let q = Patterns.closure (Term.Rel "E") in
  let r1 = Serve.query t sn q in
  check_bool "first is a miss" false r1.Serve.result_hit;
  check_bool "first ran iterations" true (r1.Serve.iterations > 0);
  check_rel "first is correct" (eval_on edges q) r1.Serve.rel;
  (* metrics must stay flat across the hit: no stage runs at all *)
  let m = Cluster.metrics (Serve.cluster t) in
  let supersteps_before = m.Metrics.supersteps and stages_before = m.Metrics.stages in
  (* a fresh translation of the same query: different fresh names *)
  let r2 = Serve.query t sn (Patterns.closure (Term.Rel "E")) in
  check_bool "second is a hit" true r2.Serve.result_hit;
  check_int "second runs no iterations" 0 r2.Serve.iterations;
  check_int "no superstep ran" supersteps_before m.Metrics.supersteps;
  check_int "no stage ran" stages_before m.Metrics.stages;
  check_bool "identical result object" true (r1.Serve.rel == r2.Serve.rel);
  let s = Serve.stats t in
  check_int "one hit" 1 s.Serve.result_hits;
  check_int "one miss" 1 s.Serve.result_misses;
  Serve.shutdown t

(* unoptimized submissions share the entry with optimized ones *)
let test_optimize_flag_shares_entry () =
  let t = make_serve () in
  let sn = Serve.open_session t in
  let q = Patterns.closure (Term.Rel "E") in
  let r1 = Serve.query ~optimize:false t sn q in
  let r2 = Serve.query t sn q in
  check_bool "hit across optimize flag" true r2.Serve.result_hit;
  check_rel "same contents" r1.Serve.rel r2.Serve.rel;
  Serve.shutdown t

(* ---- parity: cached results bit-identical across plans and workers ---- *)

let test_parity_across_plans () =
  let q () = Patterns.closure (Term.Rel "E") in
  let expected = eval_on edges (q ()) in
  List.iter
    (fun (force_plan, workers) ->
      let t = make_serve ?force_plan ~workers () in
      let sn = Serve.open_session t in
      let miss = Serve.query t sn (q ()) in
      let hit = Serve.query t sn (q ()) in
      check_bool "hit" true hit.Serve.result_hit;
      check_rel "uncached matches oracle" expected miss.Serve.rel;
      check_rel "cached matches uncached" miss.Serve.rel hit.Serve.rel;
      Serve.shutdown t)
    [
      (None, 1); (None, 4);
      (Some Exec.P_gld, 1); (Some Exec.P_gld, 4);
      (Some Exec.P_plw_s, 1); (Some Exec.P_plw_s, 4);
    ]

(* ---- plan cache ---- *)

let test_plan_cache () =
  let t = make_serve () in
  let sn = Serve.open_session t in
  (* same query shape against different constants: distinct result keys,
     distinct plan keys — but an identical resubmission reuses the plan *)
  let r1 = Serve.query t sn (Patterns.reach 1) in
  check_bool "first optimizes" false r1.Serve.plan_hit;
  (* different query, then mutate the graph so the result entry dies but
     the plan entry (still valid? no — plans depend on stats) dies too *)
  let s1 = Serve.stats t in
  check_int "one plan miss" 1 s1.Serve.plan_misses;
  (* force an evaluation of the same normal form again by dropping only
     the result entry: register a different relation name *)
  Serve.register t "F" edges2;
  let r2 = Serve.query t sn (Patterns.reach 1) in
  (* the result entry survived (depends on E only), so this is a hit *)
  check_bool "result survives unrelated register" true r2.Serve.result_hit;
  Serve.shutdown t

(* ---- invalidation: register -> miss -> hit -> mutate -> miss ---- *)

let test_invalidation () =
  let t = make_serve () in
  let sn = Serve.open_session t in
  let q () = Patterns.closure (Term.Rel "E") in
  let v0 = Serve.graph_version t in
  let r1 = Serve.query t sn (q ()) in
  check_bool "miss after register" false r1.Serve.result_hit;
  let r2 = Serve.query t sn (q ()) in
  check_bool "hit" true r2.Serve.result_hit;
  check_bool "identical object" true (r1.Serve.rel == r2.Serve.rel);
  (* mutate the graph *)
  Serve.register t "E" edges2;
  check_bool "version bumped" true (Serve.graph_version t > v0);
  let r3 = Serve.query t sn (q ()) in
  check_bool "miss after mutation" false r3.Serve.result_hit;
  check_rel "fresh result on new graph" (eval_on edges2 (q ())) r3.Serve.rel;
  let s = Serve.stats t in
  check_bool "entries were invalidated" true (s.Serve.invalidated > 0);
  let r4 = Serve.query t sn (q ()) in
  check_bool "hit again on new version" true r4.Serve.result_hit;
  Serve.shutdown t

(* ---- LRU eviction under a small byte budget ---- *)

let test_lru_eviction () =
  (* budget fits one closure result but not two *)
  let q k = Term.Select (Pred.Gt_const ("src", k), Patterns.closure (Term.Rel "E")) in
  let size =
    let r = eval_on edges (q 0) in
    64 + (Metrics.tuple_bytes 2 * Rel.cardinal r)
  in
  let t = make_serve ~result_cache_bytes:(size + (size / 4)) () in
  let sn = Serve.open_session t in
  ignore (Serve.query ~optimize:false t sn (q 0));
  ignore (Serve.query ~optimize:false t sn (q 1));
  let s = Serve.stats t in
  check_bool "evicted" true (s.Serve.evictions > 0);
  check_bool "budget respected" true (s.Serve.result_bytes <= size + (size / 4));
  (* q 0 was evicted (LRU): querying it again is a miss *)
  let r = Serve.query ~optimize:false t sn (q 0) in
  check_bool "evicted entry misses" false r.Serve.result_hit;
  (* while the most recent entry still hits after its own re-insertion *)
  let r' = Serve.query ~optimize:false t sn (q 0) in
  check_bool "reinserted entry hits" true r'.Serve.result_hit;
  Serve.shutdown t

let test_too_big_to_cache () =
  let t = make_serve ~result_cache_bytes:16 () in
  let sn = Serve.open_session t in
  let q () = Patterns.closure (Term.Rel "E") in
  ignore (Serve.query t sn (q ()));
  let r = Serve.query t sn (q ()) in
  check_bool "never cached" false r.Serve.result_hit;
  let s = Serve.stats t in
  check_int "nothing stored" 0 s.Serve.result_entries;
  check_int "no evictions" 0 s.Serve.evictions;
  Serve.shutdown t

(* ---- fairness ---- *)

let test_fair_pick () =
  let served = function 1 -> 1 | _ -> 0 in
  (* session 2 has been served less: it jumps the queue *)
  Alcotest.(check (option (pair int int)))
    "less-served session first"
    (Some (2, 4))
    (Serve.fair_pick ~served [ (1, 2); (1, 3); (2, 4) ]);
  (* equal service: FIFO by arrival *)
  Alcotest.(check (option (pair int int)))
    "fifo on ties"
    (Some (1, 2))
    (Serve.fair_pick ~served:(fun _ -> 0) [ (1, 2); (2, 3) ]);
  Alcotest.(check (option (pair int int))) "empty" None (Serve.fair_pick ~served [])

(* ---- concurrency: identical queries batch onto one evaluation ---- *)

let test_concurrent_identical_queries () =
  let t = make_serve ~max_inflight:1 () in
  let expected = eval_on edges (Patterns.closure (Term.Rel "E")) in
  let n = 4 in
  let domains =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            let sn = Serve.open_session ~name:(Printf.sprintf "client-%d" i) t in
            Serve.query t sn (Patterns.closure (Term.Rel "E"))))
  in
  let rs = List.map Domain.join domains in
  List.iter (fun (r : Serve.response) -> check_rel "every client correct" expected r.Serve.rel) rs;
  let s = Serve.stats t in
  check_int "all completed" n s.Serve.completed;
  check_int "one evaluation" 1 s.Serve.result_misses;
  check_int "everyone else reused it" (n - 1) (s.Serve.result_hits + s.Serve.shared_joins);
  Serve.shutdown t

(* ---- concurrency: distinct queries sharing a fixpoint subterm
   evaluate it exactly once (the acceptance criterion) ---- *)

let test_shared_fixpoint_batching () =
  let t = make_serve ~max_inflight:2 () in
  (* distinct whole queries, same closed fixpoint subterm when executed
     as written *)
  let qa = Patterns.closure (Term.Rel "E") in
  let qb = Term.Select (Pred.Gt_const ("src", 3), qa) in
  let da = Domain.spawn (fun () ->
      let sn = Serve.open_session t in
      Serve.query ~optimize:false t sn qa)
  in
  let db = Domain.spawn (fun () ->
      let sn = Serve.open_session t in
      Serve.query ~optimize:false t sn qb)
  in
  let ra = Domain.join da and rb = Domain.join db in
  check_rel "a correct" (eval_on edges qa) ra.Serve.rel;
  check_rel "b correct" (eval_on edges qb) rb.Serve.rel;
  let s = Serve.stats t in
  (* whatever the interleaving — b waited on a's in-flight fixpoint, or
     found it in the cache, or evaluated first and a reused it — the
     fixpoint ran exactly once. The reuse can surface as a fixpoint hit,
     a join onto the in-flight promise, or (when b finishes before a
     even starts resolving: a's whole term IS the shared fixpoint, and
     the fixpoint and result caches share one normal-key table) as a
     whole-result cache hit. *)
  check_int "exactly one fixpoint evaluation" 1 s.Serve.fix_evals;
  check_int "the other query reused it" 1
    (s.Serve.fix_hits + s.Serve.fix_shared + s.Serve.result_hits);
  Serve.shutdown t

(* the cluster-level guard cannot fire through the serve layer, even
   with several admitted evaluations on real domains *)
let test_no_concurrent_dispatch_through_serve () =
  let t = make_serve ~max_inflight:3 ~workers:2 ~parallel:true () in
  let queries =
    [
      Patterns.closure (Term.Rel "E");
      Term.Select (Pred.Gt_const ("src", 2), Patterns.closure (Term.Rel "E"));
      Term.Project ([ "src" ], Patterns.closure (Term.Rel "E"));
      Patterns.reach 1;
      Patterns.same_generation ();
    ]
  in
  let domains =
    List.map
      (fun q ->
        Domain.spawn (fun () ->
            let sn = Serve.open_session t in
            let r = Serve.query ~optimize:false t sn q in
            check_rel "correct under concurrency" (eval_on edges q) r.Serve.rel))
      queries
  in
  List.iter Domain.join domains;
  let s = Serve.stats t in
  check_int "all completed" (List.length queries) s.Serve.completed;
  check_int "none failed" 0 s.Serve.failed;
  Serve.shutdown t

(* ---- sessions and errors ---- *)

let test_session_lifecycle () =
  let t = make_serve () in
  let a = Serve.open_session ~name:"alice" t in
  let b = Serve.open_session t in
  check_bool "distinct ids" true (Serve.Session.id a <> Serve.Session.id b);
  Alcotest.(check string) "name kept" "alice" (Serve.Session.name a);
  Serve.close_session t a;
  (match Serve.query t a (Patterns.reach 1) with
  | _ -> Alcotest.fail "closed session accepted a query"
  | exception Invalid_argument _ -> ());
  (* failures propagate and are counted; the server survives *)
  (match Serve.query t b (Term.Rel "NOSUCH") with
  | _ -> Alcotest.fail "unknown relation did not fail"
  | exception _ -> ());
  let r = Serve.query t b (Patterns.reach 1) in
  check_rel "server still works" (eval_on edges (Patterns.reach 1)) r.Serve.rel;
  let s = Serve.stats t in
  check_int "failure counted" 1 s.Serve.failed;
  Serve.shutdown t;
  match Serve.query t b (Patterns.reach 1) with
  | _ -> Alcotest.fail "shut-down server accepted a query"
  | exception Invalid_argument _ -> ()

(* ---- incremental repair: updates promote cached fixpoints to
   repairable; the next miss pays only the delta resume ---- *)

let test_update_repairs () =
  let t = make_serve () in
  let sn = Serve.open_session t in
  let q () = Patterns.closure (Term.Rel "E") in
  ignore (Serve.query t sn (q ()));
  let ins = rel [ "src"; "trg" ] [ [ 6; 20 ]; [ 20; 21 ] ] in
  Serve.update ~inserts:ins t "E";
  let updated = Rel.union edges ins in
  check_rel "table updated" updated (Option.get (Serve.relation t "E"));
  let r = Serve.query t sn (q ()) in
  check_bool "post-update miss" false r.Serve.result_hit;
  check_bool "repaired, not recomputed" true r.Serve.repaired;
  check_rel "repaired result correct" (eval_on updated (q ())) r.Serve.rel;
  let s = Serve.stats t in
  check_int "one repair" 1 s.Serve.repaired;
  check_int "only the establishment evaluated" 1 s.Serve.fix_evals;
  check_int "no fallback" 0 s.Serve.repair_fallbacks;
  let r2 = Serve.query t sn (q ()) in
  check_bool "repaired result is cached" true r2.Serve.result_hit;
  Serve.shutdown t

(* rapid successive batches with and without interleaved queries: pending
   deltas merge into a net delta; each repair builds on the previous one *)
let test_rapid_update_batches () =
  let t = make_serve () in
  let sn = Serve.open_session t in
  let q () = Patterns.closure (Term.Rel "E") in
  ignore (Serve.query t sn (q ()));
  let current = ref edges in
  let apply ?inserts ?deletes () =
    Serve.update ?inserts ?deletes t "E";
    (match deletes with Some d -> current := Rel.diff !current d | None -> ());
    match inserts with Some i -> current := Rel.union !current i | None -> ()
  in
  (* two batches, no query in between: deltas merge *)
  apply ~inserts:(rel [ "src"; "trg" ] [ [ 6; 20 ] ]) ();
  apply
    ~inserts:(rel [ "src"; "trg" ] [ [ 20; 21 ] ])
    ~deletes:(rel [ "src"; "trg" ] [ [ 1; 2 ] ])
    ();
  let r = Serve.query t sn (q ()) in
  check_bool "merged batches repaired" true r.Serve.repaired;
  check_rel "merged-delta result correct" (eval_on !current (q ())) r.Serve.rel;
  (* an edge inserted then deleted before any query nets out *)
  apply ~inserts:(rel [ "src"; "trg" ] [ [ 40; 41 ] ]) ();
  apply ~deletes:(rel [ "src"; "trg" ] [ [ 40; 41 ] ]) ();
  let r2 = Serve.query t sn (q ()) in
  check_bool "repair of repair" true r2.Serve.repaired;
  check_rel "cancelling batches correct" (eval_on !current (q ())) r2.Serve.rel;
  (* sustained stream: every round repairs, never re-establishes *)
  for k = 0 to 4 do
    apply ~inserts:(rel [ "src"; "trg" ] [ [ 21 + k; 22 + k ] ]) ();
    let rk = Serve.query t sn (q ()) in
    check_bool "stream round repaired" true rk.Serve.repaired;
    check_rel "stream round correct" (eval_on !current (q ())) rk.Serve.rel
  done;
  let s = Serve.stats t in
  check_int "established exactly once" 1 s.Serve.fix_evals;
  check_int "seven repairs" 7 s.Serve.repaired;
  check_int "no fallbacks" 0 s.Serve.repair_fallbacks;
  Serve.shutdown t

(* updates racing in-flight queries: every response is a consistent
   snapshot (entirely-old or entirely-new), and once the stream settles
   the served result is the fresh one *)
let test_update_mid_evaluation () =
  let t = make_serve ~workers:2 ~parallel:true () in
  let q () = Patterns.closure (Term.Rel "E") in
  ignore (Serve.query t (Serve.open_session t) (q ()));
  let ins = rel [ "src"; "trg" ] [ [ 6; 20 ]; [ 20; 21 ] ] in
  let old_expected = eval_on edges (q ())
  and new_expected = eval_on (Rel.union edges ins) (q ()) in
  let d =
    Domain.spawn (fun () ->
        let sn = Serve.open_session t in
        List.init 8 (fun _ -> Serve.query t sn (q ())))
  in
  Serve.update ~inserts:ins t "E";
  let rs = Domain.join d in
  List.iter
    (fun (r : Serve.response) ->
      check_bool "consistent snapshot" true
        (Rel.equal old_expected r.Serve.rel || Rel.equal new_expected r.Serve.rel))
    rs;
  let r = Serve.query t (Serve.open_session t) (q ()) in
  check_rel "settled result is fresh" new_expected r.Serve.rel;
  check_int "none failed" 0 (Serve.stats t).Serve.failed;
  Serve.shutdown t

(* a delta above the repair threshold falls back to recomputation —
   transparently, with the fallback counted *)
let test_oversized_delta_fallback () =
  let t = make_serve ~repair_max_delta_frac:0.01 () in
  let sn = Serve.open_session t in
  let q () = Patterns.closure (Term.Rel "E") in
  ignore (Serve.query t sn (q ()));
  let ins = rel [ "src"; "trg" ] [ [ 6; 20 ]; [ 20; 21 ] ] in
  Serve.update ~inserts:ins t "E";
  let r = Serve.query t sn (q ()) in
  check_bool "not repaired" false r.Serve.repaired;
  check_rel "fallback result correct" (eval_on (Rel.union edges ins) (q ())) r.Serve.rel;
  let s = Serve.stats t in
  check_int "fallback counted" 1 s.Serve.repair_fallbacks;
  check_int "no repair claimed" 0 s.Serve.repaired;
  check_int "recomputed instead" 2 s.Serve.fix_evals;
  Serve.shutdown t

(* full registration severs the delta chain: handles are dropped, the
   next evaluation re-establishes *)
let test_register_drops_handles () =
  let t = make_serve () in
  let sn = Serve.open_session t in
  let q () = Patterns.closure (Term.Rel "E") in
  ignore (Serve.query t sn (q ()));
  check_int "handle parked" 1 (Serve.stats t).Serve.repair_handles;
  Serve.register t "E" edges2;
  check_int "register drops handles" 0 (Serve.stats t).Serve.repair_handles;
  let r = Serve.query t sn (q ()) in
  check_bool "recomputed after register" false r.Serve.repaired;
  check_rel "fresh graph result" (eval_on edges2 (q ())) r.Serve.rel;
  (* and the re-established handle repairs again *)
  let ins = rel [ "src"; "trg" ] [ [ 3; 9 ] ] in
  Serve.update ~inserts:ins t "E";
  let r2 = Serve.query t sn (q ()) in
  check_bool "repairs on the new graph" true r2.Serve.repaired;
  check_rel "repaired on new graph" (eval_on (Rel.union edges2 ins) (q ())) r2.Serve.rel;
  Serve.shutdown t

(* [max_repair_handles = 0] disables the machinery entirely *)
let test_repair_disabled () =
  let t = make_serve ~max_repair_handles:0 () in
  let sn = Serve.open_session t in
  let q () = Patterns.closure (Term.Rel "E") in
  ignore (Serve.query t sn (q ()));
  let ins = rel [ "src"; "trg" ] [ [ 6; 20 ] ] in
  Serve.update ~inserts:ins t "E";
  let r = Serve.query t sn (q ()) in
  check_bool "never repaired" false r.Serve.repaired;
  check_rel "still correct" (eval_on (Rel.union edges ins) (q ())) r.Serve.rel;
  let s = Serve.stats t in
  check_int "no handles" 0 s.Serve.repair_handles;
  check_int "recomputed" 2 s.Serve.fix_evals;
  Serve.shutdown t

let test_update_validation () =
  let t = make_serve () in
  let ins = rel [ "src"; "trg" ] [ [ 1; 2 ] ] in
  (match Serve.update ~inserts:ins t "NOSUCH" with
  | () -> Alcotest.fail "unknown relation accepted"
  | exception Invalid_argument _ -> ());
  (match Serve.update ~inserts:(rel [ "a"; "b"; "c" ] [ [ 1; 2; 3 ] ]) t "E" with
  | () -> Alcotest.fail "schema mismatch accepted"
  | exception Invalid_argument _ -> ());
  (match Serve.update t "E" with
  | () -> ()  (* empty update is a no-op, not an error *)
  | exception _ -> Alcotest.fail "empty update raised");
  Serve.shutdown t

let test_wait_accounting () =
  let t = make_serve () in
  let sn = Serve.open_session t in
  ignore (Serve.query t sn (Patterns.closure (Term.Rel "E")));
  let h = Serve.wait_hist t in
  check_bool "wait recorded" true (Metrics.Hist.count h >= 1);
  let l = Serve.latency_hist t in
  check_bool "latency recorded" true (Metrics.Hist.count l >= 1);
  Serve.shutdown t

let () =
  Alcotest.run "serve"
    [
      ( "cache",
        [
          Alcotest.test_case "repeat query hits, zero iterations" `Quick test_result_cache_hit;
          Alcotest.test_case "optimize flag shares entry" `Quick test_optimize_flag_shares_entry;
          Alcotest.test_case "parity across plans and workers" `Quick test_parity_across_plans;
          Alcotest.test_case "plan cache" `Quick test_plan_cache;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "register/mutate cycle" `Quick test_invalidation;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "oversized results bypass" `Quick test_too_big_to_cache;
        ] );
      ( "admission",
        [
          Alcotest.test_case "fair pick" `Quick test_fair_pick;
          Alcotest.test_case "concurrent identical queries" `Quick test_concurrent_identical_queries;
          Alcotest.test_case "shared fixpoint batching" `Quick test_shared_fixpoint_batching;
          Alcotest.test_case "no concurrent dispatch" `Quick test_no_concurrent_dispatch_through_serve;
        ] );
      ( "repair",
        [
          Alcotest.test_case "update then repaired query" `Quick test_update_repairs;
          Alcotest.test_case "rapid successive batches" `Quick test_rapid_update_batches;
          Alcotest.test_case "update mid-evaluation" `Quick test_update_mid_evaluation;
          Alcotest.test_case "oversized delta falls back" `Quick test_oversized_delta_fallback;
          Alcotest.test_case "register drops handles" `Quick test_register_drops_handles;
          Alcotest.test_case "repair disabled" `Quick test_repair_disabled;
          Alcotest.test_case "update validation" `Quick test_update_validation;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "lifecycle and failures" `Quick test_session_lifecycle;
          Alcotest.test_case "wait accounting" `Quick test_wait_accounting;
        ] );
    ]
