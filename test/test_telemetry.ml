(* Tests for lib/telemetry: interpolated quantiles on the log2
   histogram, the labeled-series registry (kind conflicts, cross-domain
   merges, strict no-op when disabled), snapshot exposition (Prometheus
   text + JSON), windowed since-last-scrape deltas, the deterministic
   sampler, and the serving layer's slow-query log and sampled per-query
   traces (query-id propagation into span attrs). *)

open Relation
module Term = Mura.Term
module Patterns = Mura.Patterns
module Cluster = Distsim.Cluster
module Hist = Telemetry.Hist
module Snapshot = Telemetry.Snapshot

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Hist.quantile                                                       *)
(* ------------------------------------------------------------------ *)

let test_quantile_empty () =
  let h = Hist.create () in
  check_float "empty histogram reports 0" 0. (Hist.quantile h 0.5)

let test_quantile_single_value () =
  let h = Hist.create () in
  Hist.add h 37.;
  (* one sample: every quantile collapses to the exact value (clamping) *)
  List.iter (fun q -> check_float "single-sample quantile" 37. (Hist.quantile h q))
    [ 0.; 0.25; 0.5; 0.99; 1. ]

let test_quantile_bounds_and_monotonicity () =
  let h = Hist.create () in
  for i = 1 to 1000 do
    Hist.add h (float_of_int i)
  done;
  let prev = ref neg_infinity in
  List.iter
    (fun q ->
      let v = Hist.quantile h q in
      check_bool "within [min, max]" true (v >= Hist.min_value h && v <= Hist.max_value h);
      check_bool "never above percentile's upper bound" true
        (v <= Hist.percentile h (100. *. q) +. 1e-9);
      check_bool "monotone in q" true (v >= !prev);
      prev := v)
    [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ]

let test_quantile_interpolates () =
  (* uniform 1..1024: the interpolated median lands near 512, while the
     bucket upper bound alone would report 1024 *)
  let h = Hist.create () in
  for i = 1 to 1024 do
    Hist.add h (float_of_int i)
  done;
  let v = Hist.quantile h 0.5 in
  check_bool "median interpolated inside its bucket" true (v >= 384. && v <= 640.);
  check_bool "strictly better than the bucket edge" true (v < Hist.percentile h 50.)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_basics () =
  let r = Telemetry.make () in
  check_bool "fresh registry is enabled" true (Telemetry.enabled r);
  check_bool "disabled is disabled" false (Telemetry.enabled Telemetry.disabled);
  Telemetry.inc r "q_total";
  Telemetry.add r "q_total" 2.;
  Telemetry.set r "inflight" 3.;
  Telemetry.observe r ~labels:[ ("session", "a") ] "lat" 100.;
  Telemetry.observe r ~labels:[ ("session", "a") ] "lat" 200.;
  Telemetry.observe r ~labels:[ ("session", "b") ] "lat" 1.;
  (* a conflicting-kind update of an existing series is dropped *)
  Telemetry.set r "q_total" 99.;
  Telemetry.observe r "inflight" 5.;
  let snap = Telemetry.snapshot r in
  check_bool "cumulative window" true (snap.Snapshot.window = `Cumulative);
  check_float "counter" 3. (Option.get (Snapshot.value snap "q_total"));
  check_float "gauge" 3. (Option.get (Snapshot.value snap "inflight"));
  (match Snapshot.find ~labels:[ ("session", "a") ] snap "lat" with
  | Some (Snapshot.Histogram h) ->
    check_int "labelled histogram count" 2 h.Snapshot.h_count;
    check_float "labelled histogram sum" 300. h.Snapshot.h_sum
  | _ -> Alcotest.fail "lat{session=a} missing or not a histogram");
  check_float "distinct label set is a distinct series" 1.
    (Option.get (Snapshot.value ~labels:[ ("session", "b") ] snap "lat"));
  check_bool "unknown series" true (Snapshot.value snap "nope" = None)

let test_label_order_canonical () =
  let r = Telemetry.make () in
  Telemetry.inc r ~labels:[ ("b", "2"); ("a", "1") ] "c";
  Telemetry.inc r ~labels:[ ("a", "1"); ("b", "2") ] "c";
  let snap = Telemetry.snapshot r in
  check_float "both label orders hit one series" 2.
    (Option.get (Snapshot.value ~labels:[ ("b", "2"); ("a", "1") ] snap "c"));
  check_int "exactly one row" 1 (List.length snap.Snapshot.rows)

let test_disabled_is_free () =
  let d = Telemetry.disabled in
  (* warm up any lazy setup, then measure the loop's allocations *)
  Telemetry.inc d "x";
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    Telemetry.inc d "x";
    Telemetry.add d "w" 3.;
    Telemetry.set d "y" 1.;
    Telemetry.observe d "z" 2.
  done;
  let words = Gc.minor_words () -. before in
  (* 4000 updates; a single boxed float per update would already be
     thousands of words. Allow slack for the Gc.minor_words calls. *)
  check_bool (Printf.sprintf "disabled path allocates nothing (%.0f words)" words) true
    (words < 256.)

let test_ambient_registry () =
  check_bool "default ambient is disabled" false (Telemetry.enabled (Telemetry.get ()));
  let r = Telemetry.make () in
  Telemetry.install r;
  check_bool "installed" true (Telemetry.get () == r);
  Telemetry.uninstall ();
  check_bool "uninstalled" false (Telemetry.enabled (Telemetry.get ()))

(* merged concurrent updates equal the sequential sum *)
let qtest_concurrent_merge =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:20 ~name:"concurrent updates merge to the sequential sum"
       QCheck2.Gen.(pair (int_range 2 6) (int_range 1 200))
       (fun (domains, k) ->
         let r = Telemetry.make () in
         let worker d () =
           for i = 1 to k do
             Telemetry.inc r "c";
             Telemetry.add r ~labels:[ ("d", string_of_int d) ] "per_domain" 1.;
             Telemetry.observe r "h" (float_of_int i)
           done
         in
         let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
         List.iter Domain.join ds;
         let snap = Telemetry.snapshot r in
         let total = float_of_int (domains * k) in
         Snapshot.value snap "c" = Some total
         && List.for_all
              (fun d ->
                Snapshot.value ~labels:[ ("d", string_of_int d) ] snap "per_domain"
                = Some (float_of_int k))
              (List.init domains Fun.id)
         &&
         match Snapshot.find snap "h" with
         | Some (Snapshot.Histogram h) ->
           h.Snapshot.h_count = domains * k
           && h.Snapshot.h_sum = float_of_int domains *. float_of_int (k * (k + 1) / 2)
         | _ -> false))

(* ------------------------------------------------------------------ *)
(* Exposition                                                          *)
(* ------------------------------------------------------------------ *)

let test_prometheus_exposition () =
  let r = Telemetry.make () in
  Telemetry.inc r ~labels:[ ("event", "hit") ] "cache_total";
  Telemetry.inc r ~labels:[ ("event", "miss") ] "cache_total";
  Telemetry.set r "inflight" 2.;
  Telemetry.observe r "lat" 3.;
  Telemetry.observe r "lat" 100.;
  let p = Snapshot.to_prometheus (Telemetry.snapshot r) in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "prometheus text contains %S" needle) true (contains p needle))
    [
      "# TYPE cache_total counter";
      "# TYPE inflight gauge";
      "# TYPE lat histogram";
      "cache_total{event=\"hit\"} 1";
      "cache_total{event=\"miss\"} 1";
      "inflight 2";
      "lat_bucket{le=\"+Inf\"} 2";
      "lat_sum 103";
      "lat_count 2";
    ];
  (* one TYPE line per metric, not per series *)
  let count_type =
    let rec go i acc =
      if i >= String.length p then acc
      else if contains (String.sub p i (min 27 (String.length p - i))) "# TYPE cache_total" then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check_int "single TYPE line for the labelled counter" 1 count_type

let test_json_exposition () =
  let r = Telemetry.make () in
  Telemetry.inc r ~labels:[ ("event", "hit") ] "cache_total";
  Telemetry.observe r "lat" 7.;
  let j = Snapshot.to_json (Telemetry.snapshot r) in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "json contains %S" needle) true (contains j needle))
    [
      "\"window\":\"cumulative\"";
      "\"metrics\":[";
      "\"name\":\"cache_total\"";
      "\"kind\":\"counter\"";
      "\"labels\":{\"event\":\"hit\"}";
      "\"kind\":\"histogram\"";
      "\"buckets\":[";
      "\"le\":";
    ]

(* ------------------------------------------------------------------ *)
(* Windows                                                             *)
(* ------------------------------------------------------------------ *)

let test_window_deltas () =
  let r = Telemetry.make () in
  let w = Telemetry.Window.create () in
  Telemetry.add r "c" 5.;
  Telemetry.set r "g" 2.;
  Telemetry.observe r "h" 10.;
  let d1 = Telemetry.Window.delta w r in
  check_bool "delta window" true (d1.Snapshot.window = `Delta);
  check_float "first scrape reports the full cumulative" 5.
    (Option.get (Snapshot.value d1 "c"));
  check_float "gauge passes through" 2. (Option.get (Snapshot.value d1 "g"));
  Telemetry.add r "c" 2.;
  Telemetry.set r "g" 7.;
  Telemetry.observe r "h" 10.;
  Telemetry.observe r "h" 1000.;
  let d2 = Telemetry.Window.delta w r in
  check_float "counter delta since last scrape" 2. (Option.get (Snapshot.value d2 "c"));
  check_float "gauge still passes through" 7. (Option.get (Snapshot.value d2 "g"));
  (match Snapshot.find d2 "h" with
  | Some (Snapshot.Histogram h) -> check_int "histogram delta count" 2 h.Snapshot.h_count
  | _ -> Alcotest.fail "windowed histogram missing");
  (* an independent handle still sees the full cumulative state *)
  let w2 = Telemetry.Window.create () in
  let e1 = Telemetry.Window.delta w2 r in
  check_float "fresh handle sees cumulative" 7. (Option.get (Snapshot.value e1 "c"));
  (* and the registry's own snapshot stays cumulative throughout *)
  check_float "cumulative snapshot unaffected" 7.
    (Option.get (Snapshot.value (Telemetry.snapshot r) "c"))

(* ------------------------------------------------------------------ *)
(* Sampler                                                             *)
(* ------------------------------------------------------------------ *)

let test_sampler_determinism () =
  let s = Telemetry.Sampler.make ~every:3 () in
  List.iter
    (fun (id, want) ->
      check_bool (Printf.sprintf "sample_id %d" id) want (Telemetry.Sampler.sample_id s id))
    [ (1, false); (2, false); (3, true); (4, false); (6, true); (9, true); (10, false) ];
  (* repeated decisions are identical: pure function of the id *)
  check_bool "deterministic" true
    (Telemetry.Sampler.sample_id s 6 = Telemetry.Sampler.sample_id s 6);
  let off = Telemetry.Sampler.make ~every:0 () in
  check_bool "every=0 disables id sampling" false (Telemetry.Sampler.sample_id off 3);
  check_bool "default threshold never slow" false (Telemetry.Sampler.slow off ~ns:1e18);
  let slow = Telemetry.Sampler.make ~slow_threshold_ns:5e6 ~every:0 () in
  check_bool "at threshold is slow" true (Telemetry.Sampler.slow slow ~ns:5e6);
  check_bool "below threshold is not" false (Telemetry.Sampler.slow slow ~ns:4.9e6)

(* ------------------------------------------------------------------ *)
(* Serving layer: slow-query log and sampled traces                    *)
(* ------------------------------------------------------------------ *)

let edges =
  Rel.of_list
    (Schema.of_list [ "src"; "trg" ])
    [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 4; 5 ]; [ 5; 1 ]; [ 3; 6 ] ]

let make_serve ?sample_every ?slow_threshold_ms ?slow_log_capacity () =
  let cluster = Cluster.make ~parallel:false ~workers:2 () in
  let t = Serve.create ?sample_every ?slow_threshold_ms ?slow_log_capacity ~cluster () in
  Serve.register t "E" edges;
  t

let test_slow_log_bound_and_eviction () =
  (* threshold 0: every completed query breaches; capacity 3 *)
  let t = make_serve ~slow_threshold_ms:0. ~slow_log_capacity:3 () in
  let sn = Serve.open_session ~name:"slow" t in
  let queries =
    [
      Patterns.closure (Term.Rel "E");
      Patterns.reach 1;
      Patterns.reach 2;
      Patterns.reach 3;
      Patterns.reach 4;
    ]
  in
  let responses = List.map (fun q -> Serve.query t sn q) queries in
  let log = Serve.slow_log t in
  let s = Serve.stats t in
  check_int "every breach is counted" (List.length queries) s.Serve.slow_queries;
  check_int "log is bounded at its capacity" 3 (List.length log);
  (* newest first: the head is the last submitted query *)
  let last = List.nth responses (List.length responses - 1) in
  (match log with
  | head :: _ ->
    check_int "newest entry first" last.Serve.query_id head.Serve.sq_query;
    check_bool "session recorded" true (head.Serve.sq_session = "slow");
    check_bool "normalized key recorded" true (String.length head.Serve.sq_key > 0);
    check_bool "latency recorded" true (head.Serve.sq_total_ns >= 0.)
  | [] -> Alcotest.fail "empty slow log");
  (* evicted entries stay visible in the counter, not the log *)
  check_bool "evictions observable" true (s.Serve.slow_queries > List.length log);
  Serve.shutdown t

let test_slow_log_off_by_default () =
  let t = make_serve () in
  let sn = Serve.open_session t in
  ignore (Serve.query t sn (Patterns.closure (Term.Rel "E")));
  check_int "no slow queries without a threshold" 0 (Serve.stats t).Serve.slow_queries;
  check_int "empty log" 0 (List.length (Serve.slow_log t));
  Serve.shutdown t

let test_query_id_propagation () =
  let t = make_serve ~sample_every:1 () in
  let sn = Serve.open_session ~name:"qid" t in
  let r1 = Serve.query t sn (Patterns.closure (Term.Rel "E")) in
  check_bool "owner evaluation is sampled" true r1.Serve.sampled;
  (* a cache hit re-serves the stored result: nothing new to capture *)
  let r2 = Serve.query t sn (Patterns.closure (Term.Rel "E")) in
  check_bool "hit is not sampled" false r2.Serve.sampled;
  check_bool "query ids are distinct and ordered" true (r2.Serve.query_id > r1.Serve.query_id);
  (match Serve.sampled_traces t with
  | [] -> Alcotest.fail "sample_every=1 captured no trace"
  | qt :: _ ->
    check_int "trace is keyed by the sampled query" r1.Serve.query_id qt.Serve.qt_query;
    check_bool "trace has events" true (qt.Serve.qt_events <> []);
    (* every captured event carries the query id, from admission
       through the cluster's stage spans *)
    List.iter
      (fun (e : Trace.event) ->
        check_bool
          (Printf.sprintf "event %s carries query_id" e.Trace.name)
          true
          (List.assoc_opt "query_id" e.Trace.attrs = Some (Trace.Int r1.Serve.query_id)))
      qt.Serve.qt_events;
    check_bool "stage spans captured" true
      (List.exists
         (fun (e : Trace.event) -> e.Trace.kind = Trace.Span && e.Trace.name = "stage")
         qt.Serve.qt_events);
    check_bool "exchange events captured" true
      (List.exists (fun (e : Trace.event) -> e.Trace.name = "shuffle") qt.Serve.qt_events));
  Serve.shutdown t

(* a user-installed ambient tracer wins: the server does not clobber it,
   and the user's events still carry the query ids *)
let test_user_tracer_wins () =
  let tr = Trace.make () in
  Trace.install tr;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      let t = make_serve ~sample_every:1 () in
      let sn = Serve.open_session t in
      let r = Serve.query t sn (Patterns.closure (Term.Rel "E")) in
      check_bool "no server capture under a user tracer" false r.Serve.sampled;
      check_int "no stored traces" 0 (List.length (Serve.sampled_traces t));
      check_bool "user tracer saw the evaluation, tagged with the id" true
        (List.exists
           (fun (e : Trace.event) ->
             List.assoc_opt "query_id" e.Trace.attrs = Some (Trace.Int r.Serve.query_id))
           (Trace.events tr));
      Serve.shutdown t)

(* the serve hot paths feed the ambient registry *)
let test_serve_feeds_registry () =
  let r = Telemetry.make () in
  Telemetry.install r;
  Fun.protect ~finally:Telemetry.uninstall (fun () ->
      let t = make_serve () in
      let sn = Serve.open_session ~name:"tele" t in
      ignore (Serve.query t sn (Patterns.closure (Term.Rel "E")));
      ignore (Serve.query t sn (Patterns.closure (Term.Rel "E")));
      let snap = Telemetry.snapshot r in
      check_float "submissions counted" 2.
        (Option.get (Snapshot.value snap "serve_queries_submitted_total"));
      check_float "result hit counted" 1.
        (Option.get
           (Snapshot.value
              ~labels:[ ("cache", "result"); ("event", "hit") ]
              snap "serve_cache_total"));
      check_float "result miss counted" 1.
        (Option.get
           (Snapshot.value
              ~labels:[ ("cache", "result"); ("event", "miss") ]
              snap "serve_cache_total"));
      (match
         Snapshot.find ~labels:[ ("session", "tele") ] snap "serve_query_latency_ns"
       with
      | Some (Snapshot.Histogram h) -> check_int "latency observed per query" 2 h.Snapshot.h_count
      | _ -> Alcotest.fail "per-session latency histogram missing");
      check_bool "cluster chokepoints reported" true
        (Snapshot.value snap "cluster_stages_total" <> None);
      Serve.shutdown t)

let () =
  Alcotest.run "telemetry"
    [
      ( "quantile",
        [
          Alcotest.test_case "empty" `Quick test_quantile_empty;
          Alcotest.test_case "single value" `Quick test_quantile_single_value;
          Alcotest.test_case "bounds and monotonicity" `Quick test_quantile_bounds_and_monotonicity;
          Alcotest.test_case "interpolation beats bucket edges" `Quick test_quantile_interpolates;
        ] );
      ( "registry",
        [
          Alcotest.test_case "basics and kinds" `Quick test_registry_basics;
          Alcotest.test_case "label order canonical" `Quick test_label_order_canonical;
          Alcotest.test_case "disabled path allocates nothing" `Quick test_disabled_is_free;
          Alcotest.test_case "ambient install/uninstall" `Quick test_ambient_registry;
          qtest_concurrent_merge;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "prometheus text" `Quick test_prometheus_exposition;
          Alcotest.test_case "json snapshot" `Quick test_json_exposition;
        ] );
      ("windows", [ Alcotest.test_case "since-last-scrape deltas" `Quick test_window_deltas ]);
      ("sampler", [ Alcotest.test_case "determinism" `Quick test_sampler_determinism ]);
      ( "serve",
        [
          Alcotest.test_case "slow log bound and eviction" `Quick test_slow_log_bound_and_eviction;
          Alcotest.test_case "slow log off by default" `Quick test_slow_log_off_by_default;
          Alcotest.test_case "query-id propagation into spans" `Quick test_query_id_propagation;
          Alcotest.test_case "user tracer wins" `Quick test_user_tracer_wins;
          Alcotest.test_case "hot paths feed the registry" `Quick test_serve_feeds_registry;
        ] );
    ]
