(* Tests for lib/trace: span nesting, zero-cost disabled mode, simulated
   clock monotonicity, per-operator rollups on a recursive query (the
   paper's P_plw vs P_gld shuffle asymmetry) and exporter
   well-formedness. *)

module Trace = Trace
module Metrics = Distsim.Metrics
module Exec = Physical.Exec
module Term = Mura.Term
module G = Graphgen.Generators

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* A minimal JSON parser — just enough to validate exporter output.    *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else raise (Bad (Printf.sprintf "expected %c at offset %d" c !pos))
  in
  let lit word v =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then (
      pos := !pos + k;
      v)
    else raise (Bad ("bad literal at offset " ^ string_of_int !pos))
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let fin = ref false in
    while not !fin do
      if !pos >= n then raise (Bad "unterminated string");
      (match s.[!pos] with
      | '"' -> fin := true
      | '\\' ->
        incr pos;
        if !pos >= n then raise (Bad "bad escape");
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 >= n then raise (Bad "truncated \\u escape");
          ignore (int_of_string ("0x" ^ String.sub s (!pos + 1) 4));
          pos := !pos + 4;
          Buffer.add_char b '?'
        | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)))
      | c -> Buffer.add_char b c);
      incr pos
    done;
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      incr pos
    done;
    if !pos = start then raise (Bad (Printf.sprintf "unexpected char at offset %d" start));
    try Num (float_of_string (String.sub s start (!pos - start)))
    with _ -> raise (Bad "bad number")
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (string_lit ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some _ -> number ()
    | None -> raise (Bad "unexpected end of input")
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then (
      incr pos;
      Arr [])
    else begin
      let items = ref [] in
      let rec go () =
        items := value () :: !items;
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          go ()
        | Some ']' -> incr pos
        | _ -> raise (Bad "expected , or ] in array")
      in
      go ();
      Arr (List.rev !items)
    end
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then (
      incr pos;
      Obj [])
    else begin
      let fields = ref [] in
      let rec go () =
        skip_ws ();
        let k = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          go ()
        | Some '}' -> incr pos
        | _ -> raise (Bad "expected , or } in object")
      in
      go ();
      Obj (List.rev !fields)
    end
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then raise (Bad "trailing garbage after JSON value");
  v

let field name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Fixtures: a distributed transitive closure under a forced plan.     *)
(* ------------------------------------------------------------------ *)

let er_graph = lazy (G.erdos_renyi ~seed:7 ~nodes:120 ~p:0.02 ())

let run_closure ~plan () =
  let cluster = Distsim.Cluster.make ~workers:4 () in
  let config = { (Exec.default_config cluster) with Exec.force_plan = plan } in
  let ctx = Exec.session config [ ("E", Lazy.force er_graph) ] in
  let result = Exec.run ctx (Mura.Patterns.closure (Term.Rel "E")) in
  (result, Distsim.Cluster.metrics cluster, Exec.report ctx)

(* Run [f] with a fresh enabled ambient tracer; return (trace, f's result). *)
let traced f =
  let tr = Trace.make () in
  Trace.install tr;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      let r = f () in
      (tr, r))

(* ------------------------------------------------------------------ *)
(* Core collector                                                      *)
(* ------------------------------------------------------------------ *)

let test_nesting () =
  let tr = Trace.make () in
  check_bool "enabled" true (Trace.enabled tr);
  let r =
    Trace.span tr ~cat:"t" ~attrs:[ ("k", Trace.Int 1) ] "outer" @@ fun () ->
    Trace.span tr "inner" @@ fun () ->
    Trace.instant tr ~attrs:[ ("records", Trace.Int 7) ] "tick";
    Trace.set_attr tr "late" (Trace.Bool true);
    42
  in
  check_int "span returns body's value" 42 r;
  match Trace.events tr with
  | [ outer; inner; tick ] ->
    check_string "outer name" "outer" outer.Trace.name;
    check_string "inner name" "inner" inner.Trace.name;
    check_string "instant name" "tick" tick.Trace.name;
    check_bool "outer is a root" true (outer.Trace.parent = -1);
    check_int "inner nested in outer" outer.Trace.id inner.Trace.parent;
    check_int "instant nested in inner" inner.Trace.id tick.Trace.parent;
    check_bool "outer is a span" true (outer.Trace.kind = Trace.Span);
    check_bool "tick is an instant" true (tick.Trace.kind = Trace.Instant);
    check_bool "static attr kept" true (List.assoc_opt "k" outer.Trace.attrs = Some (Trace.Int 1));
    check_bool "set_attr reaches innermost open span" true
      (List.assoc_opt "late" inner.Trace.attrs = Some (Trace.Bool true));
    check_bool "instant attrs kept" true
      (List.assoc_opt "records" tick.Trace.attrs = Some (Trace.Int 7));
    check_bool "durations non-negative" true
      (outer.Trace.wall_dur_us >= 0. && outer.Trace.wall_dur_us >= inner.Trace.wall_dur_us)
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let test_exception_safety () =
  let tr = Trace.make () in
  (try Trace.span tr "boom" (fun () -> failwith "body") with Failure _ -> ());
  (match Trace.events tr with
  | [ e ] ->
    check_string "span recorded despite exception" "boom" e.Trace.name;
    check_bool "root again" true (e.Trace.parent = -1)
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs));
  (* the open-span stack must have been popped: a new span is a root *)
  ignore (Trace.span tr "after" (fun () -> ()));
  match Trace.events tr with
  | [ _; after ] -> check_bool "stack popped after exception" true (after.Trace.parent = -1)
  | _ -> Alcotest.fail "expected 2 events"

let test_disabled_noop () =
  let tr = Trace.disabled in
  check_bool "disabled" false (Trace.enabled tr);
  check_int "span still runs the body" 42 (Trace.span tr "x" (fun () -> 42));
  Trace.instant tr "x";
  Trace.set_attr tr "k" (Trace.Int 1);
  check_int "no events recorded" 0 (List.length (Trace.events tr));
  check_int "nothing dropped" 0 (Trace.dropped tr)

(* The deterministic communication counters must be identical with
   tracing off and on: instrumentation observes, never perturbs. *)
let test_metrics_unperturbed () =
  let _, (m_off : Metrics.t), _ = run_closure ~plan:(Some Exec.P_gld) () in
  let _tr, (_, (m_on : Metrics.t), _) = traced (run_closure ~plan:(Some Exec.P_gld)) in
  check_int "shuffles" m_off.Metrics.shuffles m_on.Metrics.shuffles;
  check_int "shuffled_records" m_off.Metrics.shuffled_records m_on.Metrics.shuffled_records;
  check_int "shuffled_bytes" m_off.Metrics.shuffled_bytes m_on.Metrics.shuffled_bytes;
  check_int "broadcasts" m_off.Metrics.broadcasts m_on.Metrics.broadcasts;
  check_int "broadcast_records" m_off.Metrics.broadcast_records m_on.Metrics.broadcast_records;
  check_int "supersteps" m_off.Metrics.supersteps m_on.Metrics.supersteps;
  check_int "stages" m_off.Metrics.stages m_on.Metrics.stages

let test_sim_clock_monotonic () =
  let tr, _ = traced (run_closure ~plan:(Some Exec.P_plw_s)) in
  let evs = Trace.events tr in
  check_bool "trace is non-empty" true (evs <> []);
  let rec check_pairs = function
    | a :: (b :: _ as rest) ->
      if b.Trace.sim_start_ns < a.Trace.sim_start_ns then
        Alcotest.failf "sim clock went backwards: event %d at %.0f, event %d at %.0f" a.Trace.id
          a.Trace.sim_start_ns b.Trace.id b.Trace.sim_start_ns;
      check_pairs rest
    | _ -> ()
  in
  check_pairs evs;
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.sim_dur_ns < 0. then Alcotest.failf "negative sim duration on %s" e.Trace.name;
      if e.Trace.kind = Trace.Instant && e.Trace.sim_dur_ns <> 0. then
        Alcotest.failf "instant %s has a duration" e.Trace.name)
    evs

let test_counter_events () =
  let tr = Trace.make () in
  Trace.counter tr ~cat:"pool" "pool.occupancy" 3.;
  Trace.counter tr "pool.occupancy" 0.;
  (match Trace.events tr with
  | [ a; b ] ->
    check_bool "kind is Counter" true (a.Trace.kind = Trace.Counter);
    check_bool "value attr" true (List.assoc_opt "value" a.Trace.attrs = Some (Trace.Float 3.));
    check_bool "second sample" true (List.assoc_opt "value" b.Trace.attrs = Some (Trace.Float 0.))
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  match field "traceEvents" (parse_json (Trace.Chrome.to_string tr)) with
  | Some (Arr evs) ->
    check_bool "exported with phase C" true (List.exists (fun e -> field "ph" e = Some (Str "C")) evs)
  | _ -> Alcotest.fail "missing traceEvents"

(* a traced parallel stage samples the domain pool's occupancy *)
let test_pool_occupancy_sampled () =
  let tr, () =
    traced (fun () ->
        let c = Distsim.Cluster.make ~parallel:true ~workers:4 () in
        ignore (Distsim.Cluster.run_stage c (fun w -> w));
        Distsim.Cluster.shutdown c)
  in
  check_bool "pool.occupancy counter present" true
    (List.exists
       (fun (e : Trace.event) -> e.Trace.kind = Trace.Counter && e.Trace.name = "pool.occupancy")
       (Trace.events tr))

let test_exchange_phase_spans () =
  let edges =
    Relation.Rel.of_tuples
      (Relation.Schema.of_list [ "src"; "trg" ])
      (List.init 64 (fun i -> [| i; i mod 5 |]))
  in
  let tr, () =
    traced (fun () ->
        (* adaptivity off: 64 tuples are below the volume cutoff, and this
           test asserts the pooled two-phase spans specifically *)
        let c = Distsim.Cluster.make ~parallel:true ~adaptive_shuffle:false ~workers:4 () in
        check_bool "pooled shuffle active" true (Distsim.Cluster.pooled_shuffle c);
        ignore (Distsim.Dds.repartition ~by:[ "trg" ] (Distsim.Dds.of_rel ~by:[ "src" ] c edges));
        Distsim.Cluster.shutdown c)
  in
  let evs = Trace.events tr in
  let phase name =
    List.filter (fun (e : Trace.event) -> e.Trace.kind = Trace.Span && e.Trace.name = name) evs
  in
  (* of_rel + repartition: two pooled exchanges, each with both phases *)
  check_int "map spans" 2 (List.length (phase "dds.exchange.map"));
  check_int "merge spans" 2 (List.length (phase "dds.exchange.merge"));
  List.iter
    (fun (e : Trace.event) ->
      check_bool "map span carries skew attrs" true
        (List.mem_assoc "skew" e.Trace.attrs && List.mem_assoc "records" e.Trace.attrs))
    (phase "dds.exchange.map");
  (* the repartition exchange (not of_rel, where everything ships) also
     reports locally-moved records on its map span *)
  check_bool "repartition map span carries moved" true
    (List.exists (fun (e : Trace.event) -> List.mem_assoc "moved" e.Trace.attrs)
       (phase "dds.exchange.map"));
  List.iter
    (fun (e : Trace.event) ->
      check_bool "merge span carries skew attrs" true
        (List.mem_assoc "skew" e.Trace.attrs && List.mem_assoc "max_worker_records" e.Trace.attrs))
    (phase "dds.exchange.merge");
  match Trace.Rollup.exchange_phases evs with
  | [ ("dds.exchange.map", 2, map_us); ("dds.exchange.merge", 2, merge_us) ] ->
    check_bool "phase wall times non-negative" true (map_us >= 0. && merge_us >= 0.)
  | rows -> Alcotest.failf "unexpected exchange_phases rollup (%d rows)" (List.length rows)

(* ------------------------------------------------------------------ *)
(* Rollup: the paper's shuffle asymmetry, observed from the trace      *)
(* ------------------------------------------------------------------ *)

let fix_var (report : Exec.report) =
  match report.Exec.fixpoints with
  | fr :: _ -> (fr.Exec.var, fr.Exec.iterations)
  | [] -> Alcotest.fail "no fixpoint report"

let test_rollup_asymmetry () =
  (* P_gld re-shuffles the produced delta every iteration *)
  let tr_gld, (_, _, rep_gld) = traced (run_closure ~plan:(Some Exec.P_gld)) in
  let var, iters = fix_var rep_gld in
  check_bool "recursive enough to be interesting" true (iters >= 3);
  let gld_fix =
    match List.assoc_opt var (Trace.Rollup.fixpoint_shuffles (Trace.events tr_gld)) with
    | Some n -> n
    | None -> Alcotest.failf "no shuffles charged to fixpoint %s" var
  in
  check_bool
    (Printf.sprintf "P_gld: >= 1 shuffle per iteration (%d shuffles, %d iterations)" gld_fix iters)
    true (gld_fix >= iters);
  let gld_iter =
    match List.assoc_opt var (Trace.Rollup.iteration_shuffles (Trace.events tr_gld)) with
    | Some n -> n
    | None -> 0
  in
  check_bool "P_gld: iterations themselves shuffle" true (gld_iter >= iters);
  (* P_plw_s shuffles once to install the stable partitioning, then the
     local loops are narrow *)
  let tr_plw, (_, _, rep_plw) = traced (run_closure ~plan:(Some Exec.P_plw_s)) in
  let var_plw, iters_plw = fix_var rep_plw in
  check_bool "P_plw also iterates" true (iters_plw >= 3);
  let plw_fix =
    match List.assoc_opt var_plw (Trace.Rollup.fixpoint_shuffles (Trace.events tr_plw)) with
    | Some n -> n
    | None -> 0
  in
  check_int "P_plw: exactly one shuffle per fixpoint" 1 plw_fix;
  let plw_iter =
    match List.assoc_opt var_plw (Trace.Rollup.iteration_shuffles (Trace.events tr_plw)) with
    | Some n -> n
    | None -> 0
  in
  check_int "P_plw: shuffle-free iterations" 0 plw_iter

let test_rollup_rows () =
  let tr, _ = traced (run_closure ~plan:(Some Exec.P_plw_s)) in
  let evs = Trace.events tr in
  let ops = Trace.Rollup.per_operator evs in
  check_bool "has a Fix row" true
    (List.exists (fun (r : Trace.Rollup.row) -> String.length r.scope >= 3 && String.sub r.scope 0 3 = "Fix") ops);
  let iters = Trace.Rollup.per_iteration evs in
  check_bool "one row per iteration" true (List.length iters >= 3);
  List.iter
    (fun (r : Trace.Rollup.row) ->
      check_int ("iteration rows do not shuffle: " ^ r.Trace.Rollup.scope) 0
        r.Trace.Rollup.shuffles)
    iters;
  (* rendering smoke test *)
  check_bool "to_string renders" true (String.length (Trace.Rollup.to_string tr) > 0)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let test_chrome_json () =
  let tr, _ = traced (run_closure ~plan:(Some Exec.P_plw_s)) in
  let n_events = List.length (Trace.events tr) in
  List.iter
    (fun clock ->
      let doc = parse_json (Trace.Chrome.to_string ~clock tr) in
      let events =
        match field "traceEvents" doc with
        | Some (Arr evs) -> evs
        | _ -> Alcotest.fail "missing traceEvents array"
      in
      check_bool "all events present (plus thread metadata)" true
        (List.length events > n_events);
      List.iter
        (fun e ->
          let get name =
            match field name e with
            | Some v -> v
            | None -> Alcotest.failf "event missing %s" name
          in
          let ph = match get "ph" with Str s -> s | _ -> Alcotest.fail "ph not a string" in
          (match get "name" with Str _ -> () | _ -> Alcotest.fail "name not a string");
          (match get "pid" with Num _ -> () | _ -> Alcotest.fail "pid not a number");
          (match get "tid" with Num _ -> () | _ -> Alcotest.fail "tid not a number");
          match ph with
          | "X" ->
            (match get "ts" with Num _ -> () | _ -> Alcotest.fail "ts not a number");
            (match get "dur" with
            | Num d when d >= 0. -> ()
            | _ -> Alcotest.fail "dur not a non-negative number")
          | "i" -> (
            match get "s" with Str _ -> () | _ -> Alcotest.fail "instant scope missing")
          | "C" | "M" -> ()
          | other -> Alcotest.failf "unexpected phase %S" other)
        events)
    [ `Wall; `Sim ]

let test_jsonl () =
  let tr, _ = traced (run_closure ~plan:(Some Exec.P_plw_s)) in
  let lines =
    String.split_on_char '\n' (Trace.Jsonl.to_string tr)
    |> List.filter (fun l -> String.trim l <> "")
  in
  check_int "one line per event" (List.length (Trace.events tr)) (List.length lines);
  List.iter
    (fun line ->
      match parse_json line with
      | Obj _ as o ->
        List.iter
          (fun key ->
            if field key o = None then Alcotest.failf "jsonl line missing %s" key)
          [ "id"; "parent"; "name"; "cat"; "tid"; "kind"; "sim_start_ns" ]
      | _ -> Alcotest.fail "jsonl line is not an object")
    lines

(* counter events used to be exported to Chrome but silently dropped by
   the rollup; they must now be charged to the enclosing scope and
   summarized per name *)
let test_rollup_counters () =
  let tr = Trace.make () in
  ignore
    (Trace.span tr ~cat:"op" "Join" (fun () ->
         Trace.counter tr ~cat:"pool" "pool.occupancy" 3.;
         Trace.counter tr ~cat:"pool" "pool.occupancy" 1.;
         Trace.counter tr ~cat:"dds" "dds.dedup_dropped" 42.));
  let evs = Trace.events tr in
  (match Trace.Rollup.counter_series evs with
  | [ ("dds.dedup_dropped", 1, 42., 42.); ("pool.occupancy", 2, 3., 1.) ] -> ()
  | series ->
    Alcotest.failf "unexpected counter series: %s"
      (String.concat "; "
         (List.map
            (fun (n, s, m, l) -> Printf.sprintf "%s n=%d max=%.0f last=%.0f" n s m l)
            series)));
  let rows = Trace.Rollup.per_operator evs in
  let join =
    List.find (fun (r : Trace.Rollup.row) -> r.Trace.Rollup.scope = "Join") rows
  in
  check_int "counter samples charged to the operator" 3 join.Trace.Rollup.counter_samples;
  check_bool "max counter value retained" true (join.Trace.Rollup.counter_max = 42.);
  let rendered = Trace.Rollup.to_string tr in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "rendered rollup includes the counter-series table" true
    (contains rendered "== counter series ==")

(* domain-local ambient attributes land on every event kind and are
   restored on scope exit *)
let test_ambient_attrs () =
  let tr = Trace.make () in
  Trace.with_ambient_attrs
    [ ("query_id", Trace.Int 7) ]
    (fun () ->
      ignore (Trace.span tr "s" (fun () -> ()));
      Trace.instant tr "i";
      Trace.counter tr "c" 1.);
  check_bool "scope restored" true (Trace.ambient_attrs () = []);
  let evs = Trace.events tr in
  check_int "three events" 3 (List.length evs);
  List.iter
    (fun (e : Trace.event) ->
      check_bool
        ("event " ^ e.Trace.name ^ " carries the ambient attr")
        true
        (List.assoc_opt "query_id" e.Trace.attrs = Some (Trace.Int 7)))
    evs;
  (* events recorded outside the scope are untagged *)
  Trace.instant tr "outside";
  match List.rev (Trace.events tr) with
  | last :: _ ->
    check_bool "outside the scope: no ambient attr" true
      (List.assoc_opt "query_id" last.Trace.attrs = None)
  | [] -> Alcotest.fail "no events"

let test_json_escaping () =
  let tr = Trace.make () in
  ignore
    (Trace.span tr ~attrs:[ ("q", Trace.Str "say \"hi\"\n\ttab\\slash") ] "weird \"name\""
       (fun () -> ()));
  match parse_json (Trace.Chrome.to_string tr) with
  | doc -> (
    match field "traceEvents" doc with
    | Some (Arr _) -> ()
    | _ -> Alcotest.fail "escaped trace did not parse")

let () =
  Alcotest.run "trace"
    [
      ( "collector",
        [
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "exception safety" `Quick test_exception_safety;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "metrics unperturbed" `Quick test_metrics_unperturbed;
          Alcotest.test_case "sim clock monotonic" `Quick test_sim_clock_monotonic;
          Alcotest.test_case "counter events" `Quick test_counter_events;
          Alcotest.test_case "pool occupancy sampled" `Quick test_pool_occupancy_sampled;
          Alcotest.test_case "exchange phase spans" `Quick test_exchange_phase_spans;
        ] );
      ( "rollup",
        [
          Alcotest.test_case "P_plw vs P_gld shuffle asymmetry" `Quick test_rollup_asymmetry;
          Alcotest.test_case "per-operator and per-iteration rows" `Quick test_rollup_rows;
          Alcotest.test_case "counter events survive the rollup" `Quick test_rollup_counters;
          Alcotest.test_case "ambient attrs on every event kind" `Quick test_ambient_attrs;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace_event JSON" `Quick test_chrome_json;
          Alcotest.test_case "jsonl" `Quick test_jsonl;
          Alcotest.test_case "string escaping" `Quick test_json_escaping;
        ] );
    ]
